package osworld

import (
	"strings"

	"repro/internal/apps/filemgr"
	"repro/internal/apps/settings"
	"repro/internal/office/excel"
	"repro/internal/office/slides"
	"repro/internal/office/word"
	"repro/internal/uia"
)

// All returns the 39-task benchmark: 9 Word, 9 Excel, 9 PowerPoint
// single-application scenarios (the OSWorld-W shape the paper evaluates)
// plus 6 Settings and 6 Files scenarios from the extended catalog.
func All() []Task {
	var ts []Task
	ts = append(ts, wordTasks()...)
	ts = append(ts, excelTasks()...)
	ts = append(ts, slidesTasks()...)
	ts = append(ts, settingsTasks()...)
	ts = append(ts, filesTasks()...)
	return ts
}

// ByID returns the task with the given id, or false.
func ByID(id string) (Task, bool) {
	for _, t := range All() {
		if t.ID == id {
			return t, true
		}
	}
	return Task{}, false
}

func access(primary, contains string) PlanStep {
	return PlanStep{Kind: StepAccess, Target: Target{Primary: primary, GIDContains: contains}}
}

func accessVia(primary, contains, via string) PlanStep {
	return PlanStep{Kind: StepAccess, Target: Target{Primary: primary, GIDContains: contains, Via: via}}
}

func input(primary, text string) PlanStep {
	return PlanStep{Kind: StepInput, Target: Target{Primary: primary}, Text: text}
}

func key(k string) PlanStep { return PlanStep{Kind: StepShortcut, Key: k} }

// Word ------------------------------------------------------------------------

func wordTasks() []Task {
	return []Task{
		{
			ID: "word-replace", App: "Word",
			Description: "Replace every occurrence of 'alpha' with 'omega' in the document.",
			Ambiguity:   0.15,
			Build: func() *Env {
				w := word.New(
					"The alpha release shipped late.",
					"Feedback on alpha was mixed, though alpha adoption grew.",
					"Next milestone: beta.",
				)
				return &Env{App: w.App, Kind: "Word", verify: func(*Env) bool {
					return w.Doc.CountOccurrences("alpha") == 0 &&
						w.Doc.CountOccurrences("omega") == 3
				}}
			},
			Plan: []PlanStep{
				input("edFindWhat", "alpha"),
				input("edReplaceWith", "omega"),
				{Kind: StepAccess, Target: Target{Primary: "btnReplaceAll"},
					TrapKind: FailControlSem, TrapWeight: 0.3,
					TrapAlt: &Target{Primary: "btnReplaceOne"}},
			},
		},
		{
			ID: "word-font-color", App: "Word",
			Description: "Color the text of paragraphs 2 and 3 blue.",
			Ambiguity:   0.2,
			Build: func() *Env {
				w := word.New()
				return &Env{App: w.App, Kind: "Word", verify: func(*Env) bool {
					return w.Doc.Paras[1].FontColor == "Blue" &&
						w.Doc.Paras[2].FontColor == "Blue" &&
						w.Doc.Paras[0].FontColor != "Blue"
				}}
			},
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "select_paragraphs",
					ControlName: "Document", ControlType: uia.DocumentControl,
					Start: 2, End: 3}, VisualDiff: 0.5},
				{Kind: StepAccess, Target: Target{Primary: "Blue",
					GIDContains: "clrPickerStd", Via: "btnFontColor"},
					Ambiguity: 0.3, TrapKind: FailControlSem, TrapWeight: 0.4,
					TrapAlt: &Target{Primary: "Blue", GIDContains: "clrPickerStd", Via: "btnHighlight"}},
			},
		},
		{
			ID: "word-underline-color", App: "Word",
			Description: "Give the first paragraph a red underline.",
			Ambiguity:   0.25,
			Build: func() *Env {
				w := word.New()
				return &Env{App: w.App, Kind: "Word", verify: func(*Env) bool {
					return w.Doc.Paras[0].Underline &&
						w.Doc.Paras[0].UnderlineColor == "Red" &&
						w.Doc.Paras[0].FontColor != "Red"
				}}
			},
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "select_paragraphs",
					ControlName: "Document", ControlType: uia.DocumentControl,
					Start: 1, End: 1}, VisualDiff: 0.3},
				// The picker path decides the semantics: underline color,
				// not font color — the canonical path-ambiguity trap.
				{Kind: StepAccess, Target: Target{Primary: "Red",
					GIDContains: "clrPickerStd", Via: "btnUnderlineColor"},
					Ambiguity: 0.3, TrapKind: FailControlSem, TrapWeight: 0.8,
					TrapAlt: &Target{Primary: "Red", GIDContains: "clrPickerStd", Via: "btnFontColor"}},
			},
		},
		{
			ID: "word-bold", App: "Word",
			Description: "Make paragraphs 2 through 4 bold.",
			Ambiguity:   0.1,
			Build: func() *Env {
				w := word.New()
				return &Env{App: w.App, Kind: "Word", verify: func(*Env) bool {
					return !w.Doc.Paras[0].Bold && w.Doc.Paras[1].Bold &&
						w.Doc.Paras[2].Bold && w.Doc.Paras[3].Bold
				}}
			},
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "select_paragraphs",
					ControlName: "Document", ControlType: uia.DocumentControl,
					Start: 2, End: 4}, VisualDiff: 0.5},
				access("btnBold", ""),
			},
		},
		{
			ID: "word-orientation", App: "Word",
			Description: "Switch the page to landscape orientation.",
			Ambiguity:   0.05,
			Build: func() *Env {
				w := word.New()
				return &Env{App: w.App, Kind: "Word", verify: func(*Env) bool {
					return w.Doc.Orientation == "Landscape"
				}}
			},
			Plan: []PlanStep{access("Landscape", "mnuOrientation")},
		},
		{
			ID: "word-line-spacing", App: "Word",
			Description: "Set the line spacing of the whole document to 1.5.",
			Ambiguity:   0.15,
			Build: func() *Env {
				w := word.New()
				return &Env{App: w.App, Kind: "Word", verify: func(*Env) bool {
					for _, p := range w.Doc.Paras {
						if p.LineSpacing != 1.5 {
							return false
						}
					}
					return true
				}}
			},
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "select_paragraphs",
					ControlName: "Document", ControlType: uia.DocumentControl,
					Start: 1, End: 5}, VisualDiff: 0.4,
					TrapKind: FailSubtleSem, TrapWeight: 0.35, TrapAlt: nil},
				{Kind: StepAccess, Target: Target{Primary: "1.50", GIDContains: "mnuLineSpacing"},
					Ambiguity: 0.2,
					TrapKind:  FailAmbiguousTask, TrapWeight: 0.25,
					TrapAlt: &Target{Primary: "1.15", GIDContains: "mnuLineSpacing"}},
			},
		},
		{
			ID: "word-table", App: "Word",
			Description: "Insert a table with 4 columns and 3 rows.",
			Ambiguity:   0.1,
			Build: func() *Env {
				w := word.New()
				return &Env{App: w.App, Kind: "Word", verify: func(*Env) bool {
					tbl, ok := w.Doc.LastTable()
					return ok && tbl.Cols == 4 && tbl.Rows == 3
				}}
			},
			Plan: []PlanStep{
				// "4x3" reads columns×rows in the grid; transposing it is
				// the classic control-semantics slip.
				{Kind: StepAccess, Target: Target{Primary: "4x3 Table", GIDContains: "pnlTableGrid"},
					VisualDiff: 0.6, TrapKind: FailControlSem, TrapWeight: 0.5,
					TrapAlt: &Target{Primary: "3x4 Table", GIDContains: "pnlTableGrid"}},
			},
		},
		{
			ID: "word-save-as", App: "Word",
			Description: "Save the document under the name 'report_final'.",
			Ambiguity:   0.05,
			Build: func() *Env {
				w := word.New()
				return &Env{App: w.App, Kind: "Word", verify: func(*Env) bool {
					return w.Doc.Saved == "report_final"
				}}
			},
			Plan: []PlanStep{
				input("saveAsName", "report_final"),
				access("dlgSaveAsOK", ""),
			},
		},
		{
			ID: "word-header", App: "Word",
			Description: "Add the Austin header to the document.",
			Ambiguity:   0.1,
			Build: func() *Env {
				w := word.New()
				return &Env{App: w.App, Kind: "Word", verify: func(*Env) bool {
					return w.Doc.Header == "Austin Header"
				}}
			},
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "Austin Header", GIDContains: "galHeader"},
					Ambiguity: 0.2,
					TrapKind:  FailAmbiguousTask, TrapWeight: 0.25,
					TrapAlt: &Target{Primary: "Austin Footer", GIDContains: "galFooter"}},
			},
		},
	}
}

// Excel -----------------------------------------------------------------------

func excelTasks() []Task {
	return []Task{
		{
			ID: "excel-percentage", App: "Excel",
			Description: "Format cells B2 through B6 as percentages.",
			Ambiguity:   0.1,
			Build: func() *Env {
				x := excel.New()
				return &Env{App: x.App, Kind: "Excel", verify: func(*Env) bool {
					for _, ref := range []string{"B2", "B3", "B4", "B5", "B6"} {
						if x.Sheet.Cell(ref).Format != "Percentage" {
							return false
						}
					}
					return x.Sheet.Cell("C2").Format != "Percentage"
				}}
			},
			Plan: []PlanStep{
				input("edNameBox", "B2:B6"),
				key("ENTER"),
				{Kind: StepAccess, Target: Target{Primary: "Percentage", GIDContains: "cbNumberFormat"},
					Ambiguity: 0.15},
			},
		},
		{
			ID: "excel-cond-format", App: "Excel",
			Description: "Highlight sales greater than 100 in B2:B6 using conditional formatting.",
			Ambiguity:   0.25,
			Build: func() *Env {
				x := excel.New()
				return &Env{App: x.App, Kind: "Excel", verify: func(*Env) bool {
					want := map[string]bool{"B2": true, "B3": false, "B4": true, "B5": false, "B6": true}
					for ref, hl := range want {
						if (x.Sheet.Cell(ref).Fill != "") != hl {
							return false
						}
					}
					return len(x.Sheet.CondRules) > 0
				}}
			},
			Plan: []PlanStep{
				input("edNameBox", "B2:B6"),
				key("ENTER"),
				{Kind: StepInput, Target: Target{Primary: "edGTValue"}, Text: "100",
					Ambiguity: 0.2, TrapKind: FailControlSem, TrapWeight: 0.35},
				access("dlgGreaterThanOK", ""),
			},
		},
		{
			ID: "excel-sort", App: "Excel",
			Description: "Sort the data by the Sales column, largest first.",
			Ambiguity:   0.2,
			Build: func() *Env {
				x := excel.New()
				return &Env{App: x.App, Kind: "Excel", verify: func(*Env) bool {
					col := x.Sheet.Column("B")
					return len(col) >= 6 && col[1] == "143" && col[5] == "88" &&
						x.Sheet.Value("A2") == "East"
				}}
			},
			Plan: []PlanStep{
				// "Sales" is column B: a semantic mapping the model must get
				// right from the sheet content.
				{Kind: StepAccess, Target: Target{Primary: "Column B", GIDContains: "cbSortBy"},
					Ambiguity: 0.35, TrapKind: FailAmbiguousTask, TrapWeight: 0.35,
					TrapAlt: &Target{Primary: "Column C", GIDContains: "cbSortBy"}},
				{Kind: StepAccess, Target: Target{Primary: "Descending", GIDContains: "cbSortOrder"},
					Ambiguity: 0.15},
				access("dlgSortOK", ""),
			},
		},
		{
			ID: "excel-freeze", App: "Excel",
			Description: "Keep the header row visible while scrolling.",
			Ambiguity:   0.2,
			Build: func() *Env {
				x := excel.New()
				return &Env{App: x.App, Kind: "Excel", verify: func(*Env) bool {
					return x.Sheet.FrozenTopRow && !x.Sheet.FrozenFirstCol
				}}
			},
			Plan: []PlanStep{
				// "Freeze Panes" (freezes row AND column at the cursor) is
				// the misinterpretation; "Freeze Top Row" is correct.
				{Kind: StepAccess, Target: Target{Primary: "btnFreezeTopRow"},
					Ambiguity: 0.2, TrapKind: FailControlSem, TrapWeight: 0.5,
					TrapAlt: &Target{Primary: "btnFreezePanesItem"}},
			},
		},
		{
			ID: "excel-formula", App: "Excel",
			Description: "Put the formula =SUM(B2:B6) into cell D2.",
			Ambiguity:   0.1,
			Build: func() *Env {
				x := excel.New()
				return &Env{App: x.App, Kind: "Excel", verify: func(*Env) bool {
					return x.Sheet.Value("D2") == "=SUM(B2:B6)"
				}}
			},
			Plan: []PlanStep{
				input("edNameBox", "D2"),
				key("ENTER"),
				input("edFormulaBar", "=SUM(B2:B6)"),
				// Forgetting the commit keystroke is the subtle trap the
				// paper's §5.7 lesson describes for the Name Box family.
				{Kind: StepShortcut, Key: "ENTER",
					TrapKind: FailSubtleSem, TrapWeight: 0.3, TrapAlt: nil},
			},
		},
		{
			ID: "excel-read-cell", App: "Excel",
			Description: "Report the value stored in cell C22.",
			Ambiguity:   0.1,
			Build: func() *Env {
				x := excel.New()
				x.Sheet.SetValue("C22", "1379.25")
				return &Env{App: x.App, Kind: "Excel", Expected: "1379.25",
					verify: func(e *Env) bool {
						return strings.TrimSpace(e.Answer) == e.Expected
					}}
			},
			Plan: []PlanStep{
				input("edNameBox", "C22"),
				key("ENTER"),
				{Kind: StepObserve, Target: Target{Primary: "cellC22"}, VisualDiff: 0.8},
			},
		},
		{
			ID: "excel-col-width", App: "Excel",
			Description: "Set the width of columns B and C to 20.",
			Ambiguity:   0.15,
			Build: func() *Env {
				x := excel.New()
				return &Env{App: x.App, Kind: "Excel", verify: func(*Env) bool {
					return x.Sheet.ColWidth["B"] == 20 && x.Sheet.ColWidth["C"] == 20
				}}
			},
			Plan: []PlanStep{
				input("edNameBox", "B1:C1"),
				key("ENTER"),
				access("spnColWidth", ""),
				{Kind: StepState, State: &StateOp{Op: "set_range_value",
					ControlName: "Column width", ControlType: uia.SpinnerControl,
					Value: 20}, VisualDiff: 0.4},
				access("dlgColumnWidthOK", ""),
			},
		},
		{
			ID: "excel-chart", App: "Excel",
			Description: "Insert a pie chart for the sales data.",
			Ambiguity:   0.15,
			Build: func() *Env {
				x := excel.New()
				return &Env{App: x.App, Kind: "Excel", verify: func(*Env) bool {
					for _, c := range x.Sheet.Charts {
						if c == "Pie" {
							return true
						}
					}
					return false
				}}
			},
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "Pie", GIDContains: "galQuickCharts"},
					Ambiguity: 0.15,
					TrapKind:  FailAmbiguousTask, TrapWeight: 0.2,
					TrapAlt: &Target{Primary: "Bar", GIDContains: "galQuickCharts"}},
			},
		},
		{
			ID: "excel-fill-color", App: "Excel",
			Description: "Shade the header row A1:C1 gold.",
			Ambiguity:   0.2,
			Build: func() *Env {
				x := excel.New()
				return &Env{App: x.App, Kind: "Excel", verify: func(*Env) bool {
					return x.Sheet.Cell("A1").Fill == "Gold" &&
						x.Sheet.Cell("B1").Fill == "Gold" &&
						x.Sheet.Cell("C1").Fill == "Gold" &&
						x.Sheet.Cell("A1").FontColor != "Gold"
				}}
			},
			Plan: []PlanStep{
				input("edNameBox", "A1:C1"),
				key("ENTER"),
				// Fill color vs font color: same picker, different path.
				{Kind: StepAccess, Target: Target{Primary: "Gold",
					GIDContains: "clrPickerTheme", Via: "btnFillColor"},
					Ambiguity: 0.25, TrapKind: FailControlSem, TrapWeight: 0.5,
					TrapAlt: &Target{Primary: "Gold", GIDContains: "clrPickerTheme", Via: "btnFontColor"}},
			},
		},
	}
}

// PowerPoint --------------------------------------------------------------------

func slidesTasks() []Task {
	return []Task{
		{
			ID: "ppt-background", App: "PowerPoint",
			Description: "Make the background blue on all slides.",
			Ambiguity:   0.15,
			Build: func() *Env {
				p := slides.New(12)
				return &Env{App: p.App, Kind: "PowerPoint", verify: func(*Env) bool {
					return p.Deck.AllBackgrounds("Blue")
				}}
			},
			Plan: []PlanStep{
				access("Solid fill", "rbFill"),
				accessVia("Blue", "clrPickerStd", "btnFillColor"),
				// Forgetting Apply to All leaves 11 slides unchanged: the
				// subtle-semantics trap of the paper's running example.
				{Kind: StepAccess, Target: Target{Primary: "btnApplyToAll"},
					TrapKind: FailSubtleSem, TrapWeight: 0.4, TrapAlt: nil},
			},
		},
		{
			ID: "ppt-scroll", App: "PowerPoint",
			Description: "Show the slides close to the end of the deck in the thumbnail panel.",
			Ambiguity:   0.1,
			Build: func() *Env {
				p := slides.New(12)
				return &Env{App: p.App, Kind: "PowerPoint", verify: func(*Env) bool {
					return p.ThumbTop() >= 4
				}}
			},
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "scrollbar",
					ControlName: "Slides Vertical Scroll Bar",
					ControlType: uia.ScrollBarControl,
					H:           uia.NoScroll, V: 80}, VisualDiff: 0.7},
			},
		},
		{
			ID: "ppt-new-slide", App: "PowerPoint",
			Description: "Add a new slide that uses the Title Only layout.",
			Ambiguity:   0.1,
			Build: func() *Env {
				p := slides.New(5)
				return &Env{App: p.App, Kind: "PowerPoint", verify: func(*Env) bool {
					return len(p.Deck.Slides) == 6 &&
						p.Deck.CurrentSlide().Layout == "Title Only"
				}}
			},
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "Title Only",
					GIDContains: "galLayouts", Via: "btnNewSlide"},
					Ambiguity: 0.2, TrapKind: FailAmbiguousTask, TrapWeight: 0.25,
					TrapAlt: &Target{Primary: "Title Slide", GIDContains: "galLayouts", Via: "btnNewSlide"}},
			},
		},
		{
			ID: "ppt-transition", App: "PowerPoint",
			Description: "Apply the Fade transition to every slide.",
			Ambiguity:   0.15,
			Build: func() *Env {
				p := slides.New(8)
				return &Env{App: p.App, Kind: "PowerPoint", verify: func(*Env) bool {
					return p.Deck.AllTransitions("Fade")
				}}
			},
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "Fade", GIDContains: "galTransitions"},
					Ambiguity: 0.15},
				{Kind: StepAccess, Target: Target{Primary: "btnApplyToAllTransitions"},
					TrapKind: FailSubtleSem, TrapWeight: 0.45, TrapAlt: nil},
			},
		},
		{
			ID: "ppt-picture-border", App: "PowerPoint",
			Description: "Insert a picture and give it a green border.",
			Ambiguity:   0.15,
			Build: func() *Env {
				p := slides.New(6)
				return &Env{App: p.App, Kind: "PowerPoint", verify: func(*Env) bool {
					return p.PictureBorder == "Green" && p.ContextActive(slides.ContextImageSelected)
				}}
			},
			Plan: []PlanStep{
				access("pPictures", ""),
				// The border picker lives behind a context-dependent tab.
				accessVia("Green", "clrPickerStd", "btnPictureBorderP"),
			},
		},
		{
			ID: "ppt-slide-size", App: "PowerPoint",
			Description: "Change the slide size to the standard 4:3 format.",
			Ambiguity:   0.05,
			Build: func() *Env {
				p := slides.New(6)
				return &Env{App: p.App, Kind: "PowerPoint", verify: func(*Env) bool {
					return p.Deck.SlideSize == "Standard (4:3)"
				}}
			},
			Plan: []PlanStep{
				access("Standard (4:3)", "mnuSlideSize"),
			},
		},
		{
			ID: "ppt-font-size", App: "PowerPoint",
			Description: "Set the title of slide 2 to font size 48.",
			Ambiguity:   0.1,
			Build: func() *Env {
				p := slides.New(6)
				return &Env{App: p.App, Kind: "PowerPoint", verify: func(*Env) bool {
					return p.Deck.Slides[1].Title().FontSize == 48 &&
						p.Deck.Slides[0].Title().FontSize != 48
				}}
			},
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "thumbSlide2"}, VisualDiff: 0.3,
					TrapKind: FailSubtleSem, TrapWeight: 0.3, TrapAlt: nil},
				{Kind: StepAccess, Target: Target{Primary: "48", GIDContains: "pFontSize"},
					Ambiguity: 0.15,
					TrapAlt:   &Target{Primary: "36", GIDContains: "pFontSize"}},
			},
		},
		{
			ID: "ppt-hide-slide", App: "PowerPoint",
			Description: "Hide slide 3 so it is skipped during the show.",
			Ambiguity:   0.1,
			Build: func() *Env {
				p := slides.New(6)
				return &Env{App: p.App, Kind: "PowerPoint", verify: func(*Env) bool {
					return p.Deck.Slides[2].Hidden && !p.Deck.Slides[1].Hidden
				}}
			},
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "thumbSlide3"}, VisualDiff: 0.3,
					TrapKind: FailAmbiguousTask, TrapWeight: 0.2,
					TrapAlt: &Target{Primary: "thumbSlide4"}},
				access("btnHideSlide", ""),
			},
		},
		{
			ID: "ppt-title-edit", App: "PowerPoint",
			Description: "Change the title of slide 2 to 'Quarterly Review'.",
			Ambiguity:   0.1,
			Build: func() *Env {
				p := slides.New(6)
				return &Env{App: p.App, Kind: "PowerPoint", verify: func(*Env) bool {
					return p.Deck.Slides[1].Title().Text == "Quarterly Review"
				}}
			},
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "thumbSlide2"}, VisualDiff: 0.3},
				input("shpTitle", "Quarterly Review"),
			},
		},
	}
}

// Settings ---------------------------------------------------------------------

func settingsTasks() []Task {
	return []Task{
		{
			ID: "settings-night-light", App: "Settings",
			Description: "Turn on night light to cut down blue light in the evenings.",
			Ambiguity:   0.15,
			Build: func() *Env {
				s := settings.New()
				return &Env{App: s.App, Kind: "Settings", verify: func(*Env) bool {
					return s.State.NightLight && s.State.Theme != "Dark"
				}}
			},
			Plan: []PlanStep{
				// Night light vs dark mode is the settings-panel analog of
				// the font-color/highlight confusion.
				{Kind: StepAccess, Target: Target{Primary: "tglNightLight"},
					Ambiguity: 0.15, TrapKind: FailControlSem, TrapWeight: 0.5,
					TrapAlt: &Target{Primary: "Dark", GIDContains: "mnuTheme"}},
			},
		},
		{
			ID: "settings-dark-mode", App: "Settings",
			Description: "Switch the interface to dark mode.",
			Ambiguity:   0.15,
			Build: func() *Env {
				s := settings.New()
				return &Env{App: s.App, Kind: "Settings", verify: func(*Env) bool {
					return s.State.Theme == "Dark" && !s.State.NightLight
				}}
			},
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "Dark", GIDContains: "mnuTheme"},
					Ambiguity: 0.15, TrapKind: FailControlSem, TrapWeight: 0.5,
					TrapAlt: &Target{Primary: "tglNightLight"}},
			},
		},
		{
			ID: "settings-brightness", App: "Settings",
			Description: "Set the display brightness to 80 percent.",
			Ambiguity:   0.1,
			Build: func() *Env {
				s := settings.New()
				return &Env{App: s.App, Kind: "Settings", verify: func(*Env) bool {
					return s.State.Brightness == 80 && s.State.Volume != 80
				}}
			},
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "set_range_value",
					ControlName: "Brightness", ControlType: uia.SpinnerControl,
					Value: 80}, VisualDiff: 0.4},
			},
		},
		{
			ID: "settings-accent-color", App: "Settings",
			Description: "Make the accent color purple.",
			Ambiguity:   0.2,
			Build: func() *Env {
				s := settings.New()
				return &Env{App: s.App, Kind: "Settings", verify: func(*Env) bool {
					return s.State.AccentColor == "Purple" &&
						s.State.BackgroundColor != "Purple"
				}}
			},
			Plan: []PlanStep{
				// Accent vs background color: same shared picker, different
				// opener path — the Office path-ambiguity trap transplanted.
				{Kind: StepAccess, Target: Target{Primary: "Purple",
					GIDContains: "clrPickerSStd", Via: "btnAccentColor"},
					Ambiguity: 0.25, TrapKind: FailControlSem, TrapWeight: 0.5,
					TrapAlt: &Target{Primary: "Purple", GIDContains: "clrPickerSStd", Via: "btnBackgroundColor"}},
			},
		},
		{
			ID: "settings-timezone", App: "Settings",
			Description: "Set the time zone to Hawaii by hand.",
			Ambiguity:   0.2,
			Build: func() *Env {
				s := settings.New()
				return &Env{App: s.App, Kind: "Settings", verify: func(*Env) bool {
					return s.State.TimeZone == "(UTC-10:00) Hawaii" && !s.State.AutoTimeZone
				}}
			},
			Plan: []PlanStep{
				// Leaving "set automatically" on makes the manual pick a
				// silent no-op — this panel's classic subtle semantics.
				{Kind: StepAccess, Target: Target{Primary: "tglAutoTimeZone"},
					TrapKind: FailSubtleSem, TrapWeight: 0.4, TrapAlt: nil},
				// The zone list is a large enumeration: outside the core
				// topology, so the DMI agent needs a further_query round.
				{Kind: StepAccess, Target: Target{Primary: "(UTC-10:00) Hawaii",
					GIDContains: "cbTimeZone"},
					Ambiguity: 0.2, TrapKind: FailAmbiguousTask, TrapWeight: 0.25,
					TrapAlt: &Target{Primary: "(UTC-10:00) Hawaii — Daylight", GIDContains: "cbTimeZone"}},
			},
		},
		{
			ID: "settings-network-reset", App: "Settings",
			Description: "Restore the network configuration to its defaults.",
			Ambiguity:   0.2,
			Build: func() *Env {
				s := settings.New()
				s.State.VPN = true
				s.State.ProxyOn = true
				s.State.ProxyServer = "proxy.corp:8080"
				s.State.WiFi = false
				return &Env{App: s.App, Kind: "Settings", verify: func(*Env) bool {
					return s.State.NetworkResets == 1 && !s.State.VPN &&
						s.State.ProxyServer == "" && s.State.WiFi
				}}
			},
			Plan: []PlanStep{
				// "Reset now" reveals the confirm dialog, so it is a
				// navigation (non-leaf) node: the declarative agent must take
				// the imperative slow path to it (§5.7).
				{Kind: StepAccess, Target: Target{Primary: "btnResetNow",
					GIDContains: "dlgNetworkReset"}, VisualDiff: 0.3},
				// Forgetting the confirmation leaves everything unchanged.
				{Kind: StepAccess, Target: Target{Primary: "dlgResetConfirmOK"},
					TrapKind: FailSubtleSem, TrapWeight: 0.4, TrapAlt: nil},
			},
		},
	}
}

// Files ------------------------------------------------------------------------

func filesTasks() []Task {
	return []Task{
		{
			ID: "files-delete", App: "Files",
			Description: "Delete old_notes.txt from the Documents folder.",
			Ambiguity:   0.1,
			Build: func() *Env {
				f := filemgr.New()
				return &Env{App: f.App, Kind: "Files", verify: func(*Env) bool {
					return !f.FS.Has("Documents", "old_notes.txt") &&
						f.FS.Trashed("old_notes.txt") &&
						f.FS.Has("Documents", "notes.txt")
				}}
			},
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "select_controls",
					ControlName: "old_notes.txt", ControlType: uia.ListItemControl,
					Names: []string{"old_notes.txt"}}, VisualDiff: 0.4},
				{Kind: StepAccess, Target: Target{Primary: "dlgDeleteFOK", Via: "btnDeleteF"},
					TrapKind: FailControlSem, TrapWeight: 0.35,
					TrapAlt: &Target{Primary: "dlgDeleteFCancel", Via: "btnDeleteF"}},
			},
		},
		{
			ID: "files-rename", App: "Files",
			Description: "Rename report_draft.txt in Documents to report_final.txt, then open it to check the content.",
			Ambiguity:   0.15,
			Build: func() *Env {
				f := filemgr.New()
				return &Env{App: f.App, Kind: "Files", verify: func(*Env) bool {
					return f.FS.Has("Documents", "report_final.txt") &&
						!f.FS.Has("Documents", "report_draft.txt") &&
						f.PreviewOf() != nil && f.PreviewOf().Name == "report_final.txt"
				}}
			},
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "select_controls",
					ControlName: "report_draft.txt", ControlType: uia.ListItemControl,
					Names: []string{"report_draft.txt"}}, VisualDiff: 0.3},
				{Kind: StepInput, Target: Target{Primary: "edRenameTo", Via: "btnRenameF"},
					Text: "report_final.txt"},
				{Kind: StepAccess, Target: Target{Primary: "dlgRenameFOK", Via: "btnRenameF"},
					TrapKind: FailSubtleSem, TrapWeight: 0.3, TrapAlt: nil},
				// The model still knows the file by its old name: the access
				// after the rename only lands through the fuzzy matcher.
				{Kind: StepAccess, Target: Target{Primary: "report_draft.txt",
					GIDContains: "lstFiles"}, VisualDiff: 0.3},
			},
		},
		{
			ID: "files-scroll", App: "Files",
			Description: "Scroll the Projects folder to show the files at the end of the list.",
			Ambiguity:   0.1,
			Build: func() *Env {
				f := filemgr.New()
				return &Env{App: f.App, Kind: "Files", verify: func(*Env) bool {
					return f.Current == "Projects" && f.ViewTop() >= 4
				}}
			},
			Plan: []PlanStep{
				// Folder items reveal their file rows, so they are non-leaf
				// navigation nodes (imperative slow path).
				{Kind: StepAccess, Target: Target{Primary: "fldProjects"}, VisualDiff: 0.2},
				{Kind: StepState, State: &StateOp{Op: "scrollbar",
					ControlName: "Files Vertical Scroll Bar",
					ControlType: uia.ScrollBarControl,
					H:           uia.NoScroll, V: 85}, VisualDiff: 0.7},
			},
		},
		{
			ID: "files-preview-copy", App: "Files",
			Description: "Copy the second and third lines of notes.txt to the clipboard.",
			Ambiguity:   0.15,
			Build: func() *Env {
				f := filemgr.New()
				return &Env{App: f.App, Kind: "Files", verify: func(*Env) bool {
					return f.FS.TextClipboard == "Ship the quarterly report by Friday.\n"+
						"Review the budget draft with finance."
				}}
			},
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "notes.txt",
					GIDContains: "lstFiles"}, VisualDiff: 0.3},
				{Kind: StepState, State: &StateOp{Op: "select_lines",
					ControlName: "Preview", ControlType: uia.DocumentControl,
					Start: 2, End: 3}, VisualDiff: 0.5},
				// "Copy Text" vs the file-clipboard "Copy": adjacent controls,
				// different semantics.
				{Kind: StepAccess, Target: Target{Primary: "btnCopyText"},
					Ambiguity: 0.15, TrapKind: FailControlSem, TrapWeight: 0.4,
					TrapAlt: &Target{Primary: "btnCopyF"}},
			},
		},
		{
			ID: "files-move", App: "Files",
			Description: "Move photo2.jpg and photo4.jpg from Pictures into Downloads.",
			Ambiguity:   0.15,
			Build: func() *Env {
				f := filemgr.New()
				return &Env{App: f.App, Kind: "Files", verify: func(*Env) bool {
					return f.FS.Has("Downloads", "photo2.jpg") &&
						f.FS.Has("Downloads", "photo4.jpg") &&
						!f.FS.Has("Pictures", "photo2.jpg") &&
						!f.FS.Has("Pictures", "photo4.jpg")
				}}
			},
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "fldPictures"}, VisualDiff: 0.2},
				{Kind: StepState, State: &StateOp{Op: "select_controls",
					ControlName: "photo2.jpg", ControlType: uia.ListItemControl,
					Names: []string{"photo2.jpg", "photo4.jpg"}}, VisualDiff: 0.4},
				// Copy instead of Cut leaves the originals behind.
				{Kind: StepAccess, Target: Target{Primary: "btnCutF"},
					TrapKind: FailControlSem, TrapWeight: 0.35,
					TrapAlt: &Target{Primary: "btnCopyF"}},
				{Kind: StepAccess, Target: Target{Primary: "fldDownloads"}, VisualDiff: 0.2},
				access("btnPasteF", ""),
			},
		},
		{
			ID: "files-hidden", App: "Files",
			Description: "Show the hidden files in the Downloads folder.",
			Ambiguity:   0.15,
			Build: func() *Env {
				f := filemgr.New()
				return &Env{App: f.App, Kind: "Files", verify: func(*Env) bool {
					return f.Current == "Downloads" && f.ShowHidden
				}}
			},
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "fldDownloads"}, VisualDiff: 0.2},
				{Kind: StepAccess, Target: Target{Primary: "chkHiddenF"},
					Ambiguity: 0.15, TrapKind: FailControlSem, TrapWeight: 0.4,
					TrapAlt: &Target{Primary: "chkExtensionsF"}},
			},
		},
	}
}
