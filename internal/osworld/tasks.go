package osworld

import (
	"repro/internal/uia"
)

// All returns the 39-task benchmark: 9 Word, 9 Excel, 9 PowerPoint
// single-application scenarios (the OSWorld-W shape the paper evaluates)
// plus 6 Settings and 6 Files scenarios from the extended catalog. Every
// task is pure data — setup ops and a verify condition instead of closures —
// so this grid is also the reference content of packs/osworld-w.json, and
// taskpack.Builtin serves it behind the same registry interface a loaded
// pack gets.
func All() []Task {
	var ts []Task
	ts = append(ts, wordTasks()...)
	ts = append(ts, excelTasks()...)
	ts = append(ts, slidesTasks()...)
	ts = append(ts, settingsTasks()...)
	ts = append(ts, filesTasks()...)
	return ts
}

// ByID returns the task with the given id, or false.
func ByID(id string) (Task, bool) {
	for _, t := range All() {
		if t.ID == id {
			return t, true
		}
	}
	return Task{}, false
}

func access(primary, contains string) PlanStep {
	return PlanStep{Kind: StepAccess, Target: Target{Primary: primary, GIDContains: contains}}
}

func accessVia(primary, contains, via string) PlanStep {
	return PlanStep{Kind: StepAccess, Target: Target{Primary: primary, GIDContains: contains, Via: via}}
}

func input(primary, text string) PlanStep {
	return PlanStep{Kind: StepInput, Target: Target{Primary: primary}, Text: text}
}

func key(k string) PlanStep { return PlanStep{Kind: StepShortcut, Key: k} }

// Word ------------------------------------------------------------------------

func wordTasks() []Task {
	return []Task{
		{
			ID: "word-replace", App: "Word",
			Description: "Replace every occurrence of 'alpha' with 'omega' in the document.",
			Ambiguity:   0.15,
			Setup: []SetupOp{{Op: SetupWordParagraphs, Texts: []string{
				"The alpha release shipped late.",
				"Feedback on alpha was mixed, though alpha adoption grew.",
				"Next milestone: beta.",
			}}},
			Verify: AllOf(
				Eq("occurrences.alpha", 0.0),
				Eq("occurrences.omega", 3.0),
			),
			Plan: []PlanStep{
				input("edFindWhat", "alpha"),
				input("edReplaceWith", "omega"),
				{Kind: StepAccess, Target: Target{Primary: "btnReplaceAll"},
					TrapKind: FailControlSem, TrapWeight: 0.3,
					TrapAlt: &Target{Primary: "btnReplaceOne"}},
			},
		},
		{
			ID: "word-font-color", App: "Word",
			Description: "Color the text of paragraphs 2 and 3 blue.",
			Ambiguity:   0.2,
			Verify: AllOf(
				Eq("para.2.font-color", "Blue"),
				Eq("para.3.font-color", "Blue"),
				Not(Eq("para.1.font-color", "Blue")),
			),
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "select_paragraphs",
					ControlName: "Document", ControlType: uia.DocumentControl,
					Start: 2, End: 3}, VisualDiff: 0.5},
				{Kind: StepAccess, Target: Target{Primary: "Blue",
					GIDContains: "clrPickerStd", Via: "btnFontColor"},
					Ambiguity: 0.3, TrapKind: FailControlSem, TrapWeight: 0.4,
					TrapAlt: &Target{Primary: "Blue", GIDContains: "clrPickerStd", Via: "btnHighlight"}},
			},
		},
		{
			ID: "word-underline-color", App: "Word",
			Description: "Give the first paragraph a red underline.",
			Ambiguity:   0.25,
			Verify: AllOf(
				Eq("para.1.underline", true),
				Eq("para.1.underline-color", "Red"),
				Not(Eq("para.1.font-color", "Red")),
			),
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "select_paragraphs",
					ControlName: "Document", ControlType: uia.DocumentControl,
					Start: 1, End: 1}, VisualDiff: 0.3},
				// The picker path decides the semantics: underline color,
				// not font color — the canonical path-ambiguity trap.
				{Kind: StepAccess, Target: Target{Primary: "Red",
					GIDContains: "clrPickerStd", Via: "btnUnderlineColor"},
					Ambiguity: 0.3, TrapKind: FailControlSem, TrapWeight: 0.8,
					TrapAlt: &Target{Primary: "Red", GIDContains: "clrPickerStd", Via: "btnFontColor"}},
			},
		},
		{
			ID: "word-bold", App: "Word",
			Description: "Make paragraphs 2 through 4 bold.",
			Ambiguity:   0.1,
			Verify: AllOf(
				Not(Eq("para.1.bold", true)),
				Eq("para.2.bold", true),
				Eq("para.3.bold", true),
				Eq("para.4.bold", true),
			),
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "select_paragraphs",
					ControlName: "Document", ControlType: uia.DocumentControl,
					Start: 2, End: 4}, VisualDiff: 0.5},
				access("btnBold", ""),
			},
		},
		{
			ID: "word-orientation", App: "Word",
			Description: "Switch the page to landscape orientation.",
			Ambiguity:   0.05,
			Verify:      Eq("orientation", "Landscape"),
			Plan:        []PlanStep{access("Landscape", "mnuOrientation")},
		},
		{
			ID: "word-line-spacing", App: "Word",
			Description: "Set the line spacing of the whole document to 1.5.",
			Ambiguity:   0.15,
			Verify: AllOf(
				Eq("para.1.line-spacing", 1.5),
				Eq("para.2.line-spacing", 1.5),
				Eq("para.3.line-spacing", 1.5),
				Eq("para.4.line-spacing", 1.5),
				Eq("para.5.line-spacing", 1.5),
			),
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "select_paragraphs",
					ControlName: "Document", ControlType: uia.DocumentControl,
					Start: 1, End: 5}, VisualDiff: 0.4,
					TrapKind: FailSubtleSem, TrapWeight: 0.35, TrapAlt: nil},
				{Kind: StepAccess, Target: Target{Primary: "1.50", GIDContains: "mnuLineSpacing"},
					Ambiguity: 0.2,
					TrapKind:  FailAmbiguousTask, TrapWeight: 0.25,
					TrapAlt: &Target{Primary: "1.15", GIDContains: "mnuLineSpacing"}},
			},
		},
		{
			ID: "word-table", App: "Word",
			Description: "Insert a table with 4 columns and 3 rows.",
			Ambiguity:   0.1,
			Verify: AllOf(
				Eq("table.last.cols", 4.0),
				Eq("table.last.rows", 3.0),
			),
			Plan: []PlanStep{
				// "4x3" reads columns×rows in the grid; transposing it is
				// the classic control-semantics slip.
				{Kind: StepAccess, Target: Target{Primary: "4x3 Table", GIDContains: "pnlTableGrid"},
					VisualDiff: 0.6, TrapKind: FailControlSem, TrapWeight: 0.5,
					TrapAlt: &Target{Primary: "3x4 Table", GIDContains: "pnlTableGrid"}},
			},
		},
		{
			ID: "word-save-as", App: "Word",
			Description: "Save the document under the name 'report_final'.",
			Ambiguity:   0.05,
			Verify:      Eq("saved", "report_final"),
			Plan: []PlanStep{
				input("saveAsName", "report_final"),
				access("dlgSaveAsOK", ""),
			},
		},
		{
			ID: "word-header", App: "Word",
			Description: "Add the Austin header to the document.",
			Ambiguity:   0.1,
			Verify:      Eq("header", "Austin Header"),
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "Austin Header", GIDContains: "galHeader"},
					Ambiguity: 0.2,
					TrapKind:  FailAmbiguousTask, TrapWeight: 0.25,
					TrapAlt: &Target{Primary: "Austin Footer", GIDContains: "galFooter"}},
			},
		},
	}
}

// Excel -----------------------------------------------------------------------

func excelTasks() []Task {
	return []Task{
		{
			ID: "excel-percentage", App: "Excel",
			Description: "Format cells B2 through B6 as percentages.",
			Ambiguity:   0.1,
			Verify: AllOf(
				Eq("cell.B2.format", "Percentage"),
				Eq("cell.B3.format", "Percentage"),
				Eq("cell.B4.format", "Percentage"),
				Eq("cell.B5.format", "Percentage"),
				Eq("cell.B6.format", "Percentage"),
				Not(Eq("cell.C2.format", "Percentage")),
			),
			Plan: []PlanStep{
				input("edNameBox", "B2:B6"),
				key("ENTER"),
				{Kind: StepAccess, Target: Target{Primary: "Percentage", GIDContains: "cbNumberFormat"},
					Ambiguity: 0.15},
			},
		},
		{
			ID: "excel-cond-format", App: "Excel",
			Description: "Highlight sales greater than 100 in B2:B6 using conditional formatting.",
			Ambiguity:   0.25,
			Verify: AllOf(
				Not(Eq("cell.B2.fill", "")),
				Eq("cell.B3.fill", ""),
				Not(Eq("cell.B4.fill", "")),
				Eq("cell.B5.fill", ""),
				Not(Eq("cell.B6.fill", "")),
				AtLeast("cond-rules", 1),
			),
			Plan: []PlanStep{
				input("edNameBox", "B2:B6"),
				key("ENTER"),
				{Kind: StepInput, Target: Target{Primary: "edGTValue"}, Text: "100",
					Ambiguity: 0.2, TrapKind: FailControlSem, TrapWeight: 0.35},
				access("dlgGreaterThanOK", ""),
			},
		},
		{
			ID: "excel-sort", App: "Excel",
			Description: "Sort the data by the Sales column, largest first.",
			Ambiguity:   0.2,
			Verify: AllOf(
				AtLeast("used-rows", 6),
				Eq("cell.B2.value", "143"),
				Eq("cell.B6.value", "88"),
				Eq("cell.A2.value", "East"),
			),
			Plan: []PlanStep{
				// "Sales" is column B: a semantic mapping the model must get
				// right from the sheet content.
				{Kind: StepAccess, Target: Target{Primary: "Column B", GIDContains: "cbSortBy"},
					Ambiguity: 0.35, TrapKind: FailAmbiguousTask, TrapWeight: 0.35,
					TrapAlt: &Target{Primary: "Column C", GIDContains: "cbSortBy"}},
				{Kind: StepAccess, Target: Target{Primary: "Descending", GIDContains: "cbSortOrder"},
					Ambiguity: 0.15},
				access("dlgSortOK", ""),
			},
		},
		{
			ID: "excel-freeze", App: "Excel",
			Description: "Keep the header row visible while scrolling.",
			Ambiguity:   0.2,
			Verify: AllOf(
				Eq("frozen-top-row", true),
				Eq("frozen-first-col", false),
			),
			Plan: []PlanStep{
				// "Freeze Panes" (freezes row AND column at the cursor) is
				// the misinterpretation; "Freeze Top Row" is correct.
				{Kind: StepAccess, Target: Target{Primary: "btnFreezeTopRow"},
					Ambiguity: 0.2, TrapKind: FailControlSem, TrapWeight: 0.5,
					TrapAlt: &Target{Primary: "btnFreezePanesItem"}},
			},
		},
		{
			ID: "excel-formula", App: "Excel",
			Description: "Put the formula =SUM(B2:B6) into cell D2.",
			Ambiguity:   0.1,
			Verify:      Eq("cell.D2.value", "=SUM(B2:B6)"),
			Plan: []PlanStep{
				input("edNameBox", "D2"),
				key("ENTER"),
				input("edFormulaBar", "=SUM(B2:B6)"),
				// Forgetting the commit keystroke is the subtle trap the
				// paper's §5.7 lesson describes for the Name Box family.
				{Kind: StepShortcut, Key: "ENTER",
					TrapKind: FailSubtleSem, TrapWeight: 0.3, TrapAlt: nil},
			},
		},
		{
			ID: "excel-read-cell", App: "Excel",
			Description: "Report the value stored in cell C22.",
			Ambiguity:   0.1,
			Expected:    "1379.25",
			Setup:       []SetupOp{{Op: SetupExcelSetCell, Ref: "C22", Value: "1379.25"}},
			Verify:      AnswerIsExpected(),
			Plan: []PlanStep{
				input("edNameBox", "C22"),
				key("ENTER"),
				{Kind: StepObserve, Target: Target{Primary: "cellC22"}, VisualDiff: 0.8},
			},
		},
		{
			ID: "excel-col-width", App: "Excel",
			Description: "Set the width of columns B and C to 20.",
			Ambiguity:   0.15,
			Verify: AllOf(
				Eq("col-width.B", 20.0),
				Eq("col-width.C", 20.0),
			),
			Plan: []PlanStep{
				input("edNameBox", "B1:C1"),
				key("ENTER"),
				access("spnColWidth", ""),
				{Kind: StepState, State: &StateOp{Op: "set_range_value",
					ControlName: "Column width", ControlType: uia.SpinnerControl,
					Value: 20}, VisualDiff: 0.4},
				access("dlgColumnWidthOK", ""),
			},
		},
		{
			ID: "excel-chart", App: "Excel",
			Description: "Insert a pie chart for the sales data.",
			Ambiguity:   0.15,
			Verify:      Eq("charts.Pie", true),
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "Pie", GIDContains: "galQuickCharts"},
					Ambiguity: 0.15,
					TrapKind:  FailAmbiguousTask, TrapWeight: 0.2,
					TrapAlt: &Target{Primary: "Bar", GIDContains: "galQuickCharts"}},
			},
		},
		{
			ID: "excel-fill-color", App: "Excel",
			Description: "Shade the header row A1:C1 gold.",
			Ambiguity:   0.2,
			Verify: AllOf(
				Eq("cell.A1.fill", "Gold"),
				Eq("cell.B1.fill", "Gold"),
				Eq("cell.C1.fill", "Gold"),
				Not(Eq("cell.A1.font-color", "Gold")),
			),
			Plan: []PlanStep{
				input("edNameBox", "A1:C1"),
				key("ENTER"),
				// Fill color vs font color: same picker, different path.
				{Kind: StepAccess, Target: Target{Primary: "Gold",
					GIDContains: "clrPickerTheme", Via: "btnFillColor"},
					Ambiguity: 0.25, TrapKind: FailControlSem, TrapWeight: 0.5,
					TrapAlt: &Target{Primary: "Gold", GIDContains: "clrPickerTheme", Via: "btnFontColor"}},
			},
		},
	}
}

// PowerPoint --------------------------------------------------------------------

func slidesTasks() []Task {
	return []Task{
		{
			ID: "ppt-background", App: "PowerPoint",
			Description: "Make the background blue on all slides.",
			Ambiguity:   0.15,
			Setup:       []SetupOp{{Op: SetupSlidesDeck, Count: 12}},
			Verify:      Eq("all-backgrounds.Blue", true),
			Plan: []PlanStep{
				access("Solid fill", "rbFill"),
				accessVia("Blue", "clrPickerStd", "btnFillColor"),
				// Forgetting Apply to All leaves 11 slides unchanged: the
				// subtle-semantics trap of the paper's running example.
				{Kind: StepAccess, Target: Target{Primary: "btnApplyToAll"},
					TrapKind: FailSubtleSem, TrapWeight: 0.4, TrapAlt: nil},
			},
		},
		{
			ID: "ppt-scroll", App: "PowerPoint",
			Description: "Show the slides close to the end of the deck in the thumbnail panel.",
			Ambiguity:   0.1,
			Setup:       []SetupOp{{Op: SetupSlidesDeck, Count: 12}},
			Verify:      AtLeast("thumb-top", 4),
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "scrollbar",
					ControlName: "Slides Vertical Scroll Bar",
					ControlType: uia.ScrollBarControl,
					H:           uia.NoScroll, V: 80}, VisualDiff: 0.7},
			},
		},
		{
			ID: "ppt-new-slide", App: "PowerPoint",
			Description: "Add a new slide that uses the Title Only layout.",
			Ambiguity:   0.1,
			Setup:       []SetupOp{{Op: SetupSlidesDeck, Count: 5}},
			Verify: AllOf(
				Eq("slide-count", 6.0),
				Eq("current-slide.layout", "Title Only"),
			),
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "Title Only",
					GIDContains: "galLayouts", Via: "btnNewSlide"},
					Ambiguity: 0.2, TrapKind: FailAmbiguousTask, TrapWeight: 0.25,
					TrapAlt: &Target{Primary: "Title Slide", GIDContains: "galLayouts", Via: "btnNewSlide"}},
			},
		},
		{
			ID: "ppt-transition", App: "PowerPoint",
			Description: "Apply the Fade transition to every slide.",
			Ambiguity:   0.15,
			Setup:       []SetupOp{{Op: SetupSlidesDeck, Count: 8}},
			Verify:      Eq("all-transitions.Fade", true),
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "Fade", GIDContains: "galTransitions"},
					Ambiguity: 0.15},
				{Kind: StepAccess, Target: Target{Primary: "btnApplyToAllTransitions"},
					TrapKind: FailSubtleSem, TrapWeight: 0.45, TrapAlt: nil},
			},
		},
		{
			ID: "ppt-picture-border", App: "PowerPoint",
			Description: "Insert a picture and give it a green border.",
			Ambiguity:   0.15,
			Setup:       []SetupOp{{Op: SetupSlidesDeck, Count: 6}},
			Verify: AllOf(
				Eq("picture-border", "Green"),
				Eq("context.image-selected", true),
			),
			Plan: []PlanStep{
				access("pPictures", ""),
				// The border picker lives behind a context-dependent tab.
				accessVia("Green", "clrPickerStd", "btnPictureBorderP"),
			},
		},
		{
			ID: "ppt-slide-size", App: "PowerPoint",
			Description: "Change the slide size to the standard 4:3 format.",
			Ambiguity:   0.05,
			Setup:       []SetupOp{{Op: SetupSlidesDeck, Count: 6}},
			Verify:      Eq("slide-size", "Standard (4:3)"),
			Plan: []PlanStep{
				access("Standard (4:3)", "mnuSlideSize"),
			},
		},
		{
			ID: "ppt-font-size", App: "PowerPoint",
			Description: "Set the title of slide 2 to font size 48.",
			Ambiguity:   0.1,
			Setup:       []SetupOp{{Op: SetupSlidesDeck, Count: 6}},
			Verify: AllOf(
				Eq("slide.2.title.font-size", 48.0),
				Not(Eq("slide.1.title.font-size", 48.0)),
			),
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "thumbSlide2"}, VisualDiff: 0.3,
					TrapKind: FailSubtleSem, TrapWeight: 0.3, TrapAlt: nil},
				{Kind: StepAccess, Target: Target{Primary: "48", GIDContains: "pFontSize"},
					Ambiguity: 0.15,
					TrapAlt:   &Target{Primary: "36", GIDContains: "pFontSize"}},
			},
		},
		{
			ID: "ppt-hide-slide", App: "PowerPoint",
			Description: "Hide slide 3 so it is skipped during the show.",
			Ambiguity:   0.1,
			Setup:       []SetupOp{{Op: SetupSlidesDeck, Count: 6}},
			Verify: AllOf(
				Eq("slide.3.hidden", true),
				Eq("slide.2.hidden", false),
			),
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "thumbSlide3"}, VisualDiff: 0.3,
					TrapKind: FailAmbiguousTask, TrapWeight: 0.2,
					TrapAlt: &Target{Primary: "thumbSlide4"}},
				access("btnHideSlide", ""),
			},
		},
		{
			ID: "ppt-title-edit", App: "PowerPoint",
			Description: "Change the title of slide 2 to 'Quarterly Review'.",
			Ambiguity:   0.1,
			Setup:       []SetupOp{{Op: SetupSlidesDeck, Count: 6}},
			Verify:      Eq("slide.2.title.text", "Quarterly Review"),
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "thumbSlide2"}, VisualDiff: 0.3},
				input("shpTitle", "Quarterly Review"),
			},
		},
	}
}

// Settings ---------------------------------------------------------------------

func settingsTasks() []Task {
	return []Task{
		{
			ID: "settings-night-light", App: "Settings",
			Description: "Turn on night light to cut down blue light in the evenings.",
			Ambiguity:   0.15,
			Verify: AllOf(
				Eq("state.night-light", true),
				Not(Eq("state.theme", "Dark")),
			),
			Plan: []PlanStep{
				// Night light vs dark mode is the settings-panel analog of
				// the font-color/highlight confusion.
				{Kind: StepAccess, Target: Target{Primary: "tglNightLight"},
					Ambiguity: 0.15, TrapKind: FailControlSem, TrapWeight: 0.5,
					TrapAlt: &Target{Primary: "Dark", GIDContains: "mnuTheme"}},
			},
		},
		{
			ID: "settings-dark-mode", App: "Settings",
			Description: "Switch the interface to dark mode.",
			Ambiguity:   0.15,
			Verify: AllOf(
				Eq("state.theme", "Dark"),
				Eq("state.night-light", false),
			),
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "Dark", GIDContains: "mnuTheme"},
					Ambiguity: 0.15, TrapKind: FailControlSem, TrapWeight: 0.5,
					TrapAlt: &Target{Primary: "tglNightLight"}},
			},
		},
		{
			ID: "settings-brightness", App: "Settings",
			Description: "Set the display brightness to 80 percent.",
			Ambiguity:   0.1,
			Verify: AllOf(
				Eq("state.brightness", 80.0),
				Not(Eq("state.volume", 80.0)),
			),
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "set_range_value",
					ControlName: "Brightness", ControlType: uia.SpinnerControl,
					Value: 80}, VisualDiff: 0.4},
			},
		},
		{
			ID: "settings-accent-color", App: "Settings",
			Description: "Make the accent color purple.",
			Ambiguity:   0.2,
			Verify: AllOf(
				Eq("state.accent-color", "Purple"),
				Not(Eq("state.background-color", "Purple")),
			),
			Plan: []PlanStep{
				// Accent vs background color: same shared picker, different
				// opener path — the Office path-ambiguity trap transplanted.
				{Kind: StepAccess, Target: Target{Primary: "Purple",
					GIDContains: "clrPickerSStd", Via: "btnAccentColor"},
					Ambiguity: 0.25, TrapKind: FailControlSem, TrapWeight: 0.5,
					TrapAlt: &Target{Primary: "Purple", GIDContains: "clrPickerSStd", Via: "btnBackgroundColor"}},
			},
		},
		{
			ID: "settings-timezone", App: "Settings",
			Description: "Set the time zone to Hawaii by hand.",
			Ambiguity:   0.2,
			Verify: AllOf(
				Eq("state.time-zone", "(UTC-10:00) Hawaii"),
				Eq("state.auto-time-zone", false),
			),
			Plan: []PlanStep{
				// Leaving "set automatically" on makes the manual pick a
				// silent no-op — this panel's classic subtle semantics.
				{Kind: StepAccess, Target: Target{Primary: "tglAutoTimeZone"},
					TrapKind: FailSubtleSem, TrapWeight: 0.4, TrapAlt: nil},
				// The zone list is a large enumeration: outside the core
				// topology, so the DMI agent needs a further_query round.
				{Kind: StepAccess, Target: Target{Primary: "(UTC-10:00) Hawaii",
					GIDContains: "cbTimeZone"},
					Ambiguity: 0.2, TrapKind: FailAmbiguousTask, TrapWeight: 0.25,
					TrapAlt: &Target{Primary: "(UTC-10:00) Hawaii — Daylight", GIDContains: "cbTimeZone"}},
			},
		},
		{
			ID: "settings-network-reset", App: "Settings",
			Description: "Restore the network configuration to its defaults.",
			Ambiguity:   0.2,
			Setup: []SetupOp{
				{Op: SetupSettingsSet, Path: "vpn", Value: true},
				{Op: SetupSettingsSet, Path: "proxy-on", Value: true},
				{Op: SetupSettingsSet, Path: "proxy-server", Value: "proxy.corp:8080"},
				{Op: SetupSettingsSet, Path: "wifi", Value: false},
			},
			Verify: AllOf(
				Eq("state.network-resets", 1.0),
				Eq("state.vpn", false),
				Eq("state.proxy-server", ""),
				Eq("state.wifi", true),
			),
			Plan: []PlanStep{
				// "Reset now" reveals the confirm dialog, so it is a
				// navigation (non-leaf) node: the declarative agent must take
				// the imperative slow path to it (§5.7).
				{Kind: StepAccess, Target: Target{Primary: "btnResetNow",
					GIDContains: "dlgNetworkReset"}, VisualDiff: 0.3},
				// Forgetting the confirmation leaves everything unchanged.
				{Kind: StepAccess, Target: Target{Primary: "dlgResetConfirmOK"},
					TrapKind: FailSubtleSem, TrapWeight: 0.4, TrapAlt: nil},
			},
		},
	}
}

// Files ------------------------------------------------------------------------

func filesTasks() []Task {
	return []Task{
		{
			ID: "files-delete", App: "Files",
			Description: "Delete old_notes.txt from the Documents folder.",
			Ambiguity:   0.1,
			Verify: AllOf(
				Eq("has.Documents.old_notes.txt", false),
				Eq("trashed.old_notes.txt", true),
				Eq("has.Documents.notes.txt", true),
			),
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "select_controls",
					ControlName: "old_notes.txt", ControlType: uia.ListItemControl,
					Names: []string{"old_notes.txt"}}, VisualDiff: 0.4},
				{Kind: StepAccess, Target: Target{Primary: "dlgDeleteFOK", Via: "btnDeleteF"},
					TrapKind: FailControlSem, TrapWeight: 0.35,
					TrapAlt: &Target{Primary: "dlgDeleteFCancel", Via: "btnDeleteF"}},
			},
		},
		{
			ID: "files-rename", App: "Files",
			Description: "Rename report_draft.txt in Documents to report_final.txt, then open it to check the content.",
			Ambiguity:   0.15,
			Verify: AllOf(
				Eq("has.Documents.report_final.txt", true),
				Eq("has.Documents.report_draft.txt", false),
				Eq("preview-name", "report_final.txt"),
			),
			Plan: []PlanStep{
				{Kind: StepState, State: &StateOp{Op: "select_controls",
					ControlName: "report_draft.txt", ControlType: uia.ListItemControl,
					Names: []string{"report_draft.txt"}}, VisualDiff: 0.3},
				{Kind: StepInput, Target: Target{Primary: "edRenameTo", Via: "btnRenameF"},
					Text: "report_final.txt"},
				{Kind: StepAccess, Target: Target{Primary: "dlgRenameFOK", Via: "btnRenameF"},
					TrapKind: FailSubtleSem, TrapWeight: 0.3, TrapAlt: nil},
				// The model still knows the file by its old name: the access
				// after the rename only lands through the fuzzy matcher.
				{Kind: StepAccess, Target: Target{Primary: "report_draft.txt",
					GIDContains: "lstFiles"}, VisualDiff: 0.3},
			},
		},
		{
			ID: "files-scroll", App: "Files",
			Description: "Scroll the Projects folder to show the files at the end of the list.",
			Ambiguity:   0.1,
			Verify: AllOf(
				Eq("current", "Projects"),
				AtLeast("view-top", 4),
			),
			Plan: []PlanStep{
				// Folder items reveal their file rows, so they are non-leaf
				// navigation nodes (imperative slow path).
				{Kind: StepAccess, Target: Target{Primary: "fldProjects"}, VisualDiff: 0.2},
				{Kind: StepState, State: &StateOp{Op: "scrollbar",
					ControlName: "Files Vertical Scroll Bar",
					ControlType: uia.ScrollBarControl,
					H:           uia.NoScroll, V: 85}, VisualDiff: 0.7},
			},
		},
		{
			ID: "files-preview-copy", App: "Files",
			Description: "Copy the second and third lines of notes.txt to the clipboard.",
			Ambiguity:   0.15,
			Verify: Eq("text-clipboard", "Ship the quarterly report by Friday.\n"+
				"Review the budget draft with finance."),
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "notes.txt",
					GIDContains: "lstFiles"}, VisualDiff: 0.3},
				{Kind: StepState, State: &StateOp{Op: "select_lines",
					ControlName: "Preview", ControlType: uia.DocumentControl,
					Start: 2, End: 3}, VisualDiff: 0.5},
				// "Copy Text" vs the file-clipboard "Copy": adjacent controls,
				// different semantics.
				{Kind: StepAccess, Target: Target{Primary: "btnCopyText"},
					Ambiguity: 0.15, TrapKind: FailControlSem, TrapWeight: 0.4,
					TrapAlt: &Target{Primary: "btnCopyF"}},
			},
		},
		{
			ID: "files-move", App: "Files",
			Description: "Move photo2.jpg and photo4.jpg from Pictures into Downloads.",
			Ambiguity:   0.15,
			Verify: AllOf(
				Eq("has.Downloads.photo2.jpg", true),
				Eq("has.Downloads.photo4.jpg", true),
				Eq("has.Pictures.photo2.jpg", false),
				Eq("has.Pictures.photo4.jpg", false),
			),
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "fldPictures"}, VisualDiff: 0.2},
				{Kind: StepState, State: &StateOp{Op: "select_controls",
					ControlName: "photo2.jpg", ControlType: uia.ListItemControl,
					Names: []string{"photo2.jpg", "photo4.jpg"}}, VisualDiff: 0.4},
				// Copy instead of Cut leaves the originals behind.
				{Kind: StepAccess, Target: Target{Primary: "btnCutF"},
					TrapKind: FailControlSem, TrapWeight: 0.35,
					TrapAlt: &Target{Primary: "btnCopyF"}},
				{Kind: StepAccess, Target: Target{Primary: "fldDownloads"}, VisualDiff: 0.2},
				access("btnPasteF", ""),
			},
		},
		{
			ID: "files-hidden", App: "Files",
			Description: "Show the hidden files in the Downloads folder.",
			Ambiguity:   0.15,
			Verify: AllOf(
				Eq("current", "Downloads"),
				Eq("show-hidden", true),
			),
			Plan: []PlanStep{
				{Kind: StepAccess, Target: Target{Primary: "fldDownloads"}, VisualDiff: 0.2},
				{Kind: StepAccess, Target: Target{Primary: "chkHiddenF"},
					Ambiguity: 0.15, TrapKind: FailControlSem, TrapWeight: 0.4,
					TrapAlt: &Target{Primary: "chkExtensionsF"}},
			},
		},
	}
}
