package osworld

import "testing"

func TestBenchmarkShape(t *testing.T) {
	tasks := All()
	if len(tasks) != 39 {
		t.Fatalf("benchmark has %d tasks, want 39 (27 OSWorld-W + 12 catalog)", len(tasks))
	}
	perApp := map[string]int{}
	seen := map[string]bool{}
	for _, task := range tasks {
		if seen[task.ID] {
			t.Errorf("duplicate task id %q", task.ID)
		}
		seen[task.ID] = true
		perApp[task.App]++
		if task.Description == "" || len(task.Plan) == 0 {
			t.Errorf("task %q incomplete", task.ID)
		}
	}
	want := map[string]int{
		"Word": 9, "Excel": 9, "PowerPoint": 9, "Settings": 6, "Files": 6,
	}
	if len(perApp) != len(want) {
		t.Errorf("benchmark spans %d apps, want %d", len(perApp), len(want))
	}
	for app, n := range want {
		if perApp[app] != n {
			t.Errorf("%s has %d tasks, want %d", app, perApp[app], n)
		}
	}
}

// TestByIDCoversAllExactlyOnce: every listed task resolves through ByID to
// itself, exactly once (id collisions would silently shadow tasks).
func TestByIDCoversAllExactlyOnce(t *testing.T) {
	counts := map[string]int{}
	for _, task := range All() {
		counts[task.ID]++
		got, ok := ByID(task.ID)
		if !ok {
			t.Errorf("ByID(%q) not found", task.ID)
			continue
		}
		if got.ID != task.ID || got.App != task.App || got.Description != task.Description {
			t.Errorf("ByID(%q) returned a different task", task.ID)
		}
	}
	for id, n := range counts {
		if n != 1 {
			t.Errorf("task id %q appears %d times", id, n)
		}
	}
}

func TestTasksBuildFreshAndUnsolved(t *testing.T) {
	for _, task := range All() {
		task := task
		t.Run(task.ID, func(t *testing.T) {
			env := task.Build()
			if env.App == nil || env.Kind != task.App {
				t.Fatalf("env app wiring wrong: kind=%q", env.Kind)
			}
			if env.Verify() {
				t.Fatal("freshly built task already verifies (verifier too weak)")
			}
			// A second build is independent state.
			env2 := task.Build()
			if env2.App == env.App {
				t.Fatal("Build returned a shared application instance")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("ppt-background"); !ok {
		t.Fatal("known id not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestPolicyLevelClassification(t *testing.T) {
	policy := []string{FailAmbiguousTask, FailControlSem, FailSubtleSem}
	mechanism := []string{FailVisualSem, FailTopology, FailGroundingNav,
		FailComposite, FailStepCap, FailExecution}
	for _, c := range policy {
		if !PolicyLevel(c) {
			t.Errorf("%s should be policy-level", c)
		}
	}
	for _, c := range mechanism {
		if PolicyLevel(c) {
			t.Errorf("%s should be mechanism-level", c)
		}
	}
}

func TestObservationTaskAnswers(t *testing.T) {
	task, _ := ByID("excel-read-cell")
	env := task.Build()
	if env.Expected == "" {
		t.Fatal("observation task lacks expected answer")
	}
	env.Answer = env.Expected
	if !env.Verify() {
		t.Fatal("correct answer rejected")
	}
	env.Answer = "wrong"
	if env.Verify() {
		t.Fatal("wrong answer accepted")
	}
}
