package osworld

import "testing"

func TestBenchmarkShape(t *testing.T) {
	tasks := All()
	if len(tasks) != 27 {
		t.Fatalf("benchmark has %d tasks, want 27 (OSWorld-W single-app)", len(tasks))
	}
	perApp := map[string]int{}
	seen := map[string]bool{}
	for _, task := range tasks {
		if seen[task.ID] {
			t.Errorf("duplicate task id %q", task.ID)
		}
		seen[task.ID] = true
		perApp[task.App]++
		if task.Description == "" || len(task.Plan) == 0 {
			t.Errorf("task %q incomplete", task.ID)
		}
	}
	for _, app := range []string{"Word", "Excel", "PowerPoint"} {
		if perApp[app] != 9 {
			t.Errorf("%s has %d tasks, want 9", app, perApp[app])
		}
	}
}

func TestTasksBuildFreshAndUnsolved(t *testing.T) {
	for _, task := range All() {
		task := task
		t.Run(task.ID, func(t *testing.T) {
			env := task.Build()
			if env.App == nil || env.Kind != task.App {
				t.Fatalf("env app wiring wrong: kind=%q", env.Kind)
			}
			if env.Verify() {
				t.Fatal("freshly built task already verifies (verifier too weak)")
			}
			// A second build is independent state.
			env2 := task.Build()
			if env2.App == env.App {
				t.Fatal("Build returned a shared application instance")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("ppt-background"); !ok {
		t.Fatal("known id not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestPolicyLevelClassification(t *testing.T) {
	policy := []string{FailAmbiguousTask, FailControlSem, FailSubtleSem}
	mechanism := []string{FailVisualSem, FailTopology, FailGroundingNav,
		FailComposite, FailStepCap, FailExecution}
	for _, c := range policy {
		if !PolicyLevel(c) {
			t.Errorf("%s should be policy-level", c)
		}
	}
	for _, c := range mechanism {
		if PolicyLevel(c) {
			t.Errorf("%s should be mechanism-level", c)
		}
	}
}

func TestObservationTaskAnswers(t *testing.T) {
	task, _ := ByID("excel-read-cell")
	env := task.Build()
	if env.Expected == "" {
		t.Fatal("observation task lacks expected answer")
	}
	env.Answer = env.Expected
	if !env.Verify() {
		t.Fatal("correct answer rejected")
	}
	env.Answer = "wrong"
	if env.Verify() {
		t.Fatal("wrong answer accepted")
	}
}
