package osworld

// Setup ops. A task's environment starts from its application factory's
// defaults; setup ops declare the deltas (seed paragraphs, seeded cells,
// deck size, settings state) that the old Build closures applied in code.
// Each op is interpreted by the application's env builder in envs.go — the
// five app factories stay the only compiled-in part of a task.
const (
	// SetupWordParagraphs seeds the document with Texts instead of the
	// default paragraphs (applied at construction, like word.New(texts...)).
	SetupWordParagraphs = "word-paragraphs"
	// SetupExcelSetCell writes the string Value into the cell at Ref.
	SetupExcelSetCell = "excel-set-cell"
	// SetupSlidesDeck sizes the deck to Count slides (applied at
	// construction, like slides.New(count)).
	SetupSlidesDeck = "slides-deck"
	// SetupSettingsSet sets the settings-state field named by Path to Value
	// (bool or string, matching the field).
	SetupSettingsSet = "settings-set"
)

// SetupOp is one declarative environment-preparation step. Only the fields
// its Op names are meaningful; the rest stay zero.
type SetupOp struct {
	Op    string
	Texts []string // SetupWordParagraphs
	Ref   string   // SetupExcelSetCell
	Path  string   // SetupSettingsSet
	Value any      // SetupExcelSetCell (string), SetupSettingsSet (bool/string)
	Count int      // SetupSlidesDeck
}
