package osworld

import (
	"errors"
	"strings"
	"testing"
)

// probeEnv builds an Env over a fixed path→value table; "boom" errors, any
// other unknown path errors like a real application probe would.
func probeEnv(state map[string]any) *Env {
	return &Env{probe: func(path string) (any, error) {
		if path == "boom" {
			return nil, errors.New("probe exploded")
		}
		v, ok := state[path]
		if !ok {
			return nil, errPath("Test", path)
		}
		return v, nil
	}}
}

// TestCondPrimitives drives every condition op through its true branch, its
// false branch, and (where one exists) its error branch — the contract every
// pack-authored verify condition evaluates under.
func TestCondPrimitives(t *testing.T) {
	env := probeEnv(map[string]any{
		"str":   "hello world",
		"num":   3.0,
		"int":   7,
		"on":    true,
		"off":   false,
		"empty": "",
		"nada":  nil,
	})
	env.Answer = "  42\n"
	env.Expected = "42"

	tests := []struct {
		name    string
		cond    Cond
		want    bool
		wantErr string // substring; "" = no error
	}{
		// equals
		{"equals string true", Eq("str", "hello world"), true, ""},
		{"equals string false", Eq("str", "goodbye"), false, ""},
		{"equals empty string true", Eq("empty", ""), true, ""},
		{"equals float true", Eq("num", 3.0), true, ""},
		{"equals float false", Eq("num", 4.0), false, ""},
		{"equals int probe vs float value", Eq("int", 7.0), true, ""},
		{"equals bool true", Eq("on", true), true, ""},
		{"equals bool false value", Eq("off", false), true, ""},
		{"equals bool mismatch", Eq("on", false), false, ""},
		{"equals type mismatch", Eq("str", 3.0), false, ""},
		{"equals nil probe matches nothing", Eq("nada", ""), false, ""},
		{"equals unknown path", Eq("no-such", "x"), false, "unknown Test state path"},
		{"equals probe error", Eq("boom", "x"), false, "probe exploded"},
		// contains
		{"contains true", ContainsStr("str", "lo wo"), true, ""},
		{"contains false", ContainsStr("str", "xyz"), false, ""},
		{"contains non-string state", ContainsStr("num", "3"), false, ""},
		{"contains nil state", ContainsStr("nada", "x"), false, ""},
		{"contains non-string value", Cond{Op: CondContains, Path: "str", Value: 3.0}, false, "needs a string value"},
		{"contains probe error", ContainsStr("boom", "x"), false, "probe exploded"},
		// at-least
		{"at-least greater", AtLeast("num", 2), true, ""},
		{"at-least equal", AtLeast("num", 3), true, ""},
		{"at-least below", AtLeast("num", 4), false, ""},
		{"at-least int probe", AtLeast("int", 7), true, ""},
		{"at-least non-numeric state", AtLeast("str", 1), false, ""},
		{"at-least nil state", AtLeast("nada", 1), false, ""},
		{"at-least non-numeric value", Cond{Op: CondAtLeast, Path: "num", Value: "two"}, false, "needs a numeric value"},
		{"at-least probe error", AtLeast("boom", 1), false, "probe exploded"},
		// answer
		{"answer trims and matches", AnswerIsExpected(), true, ""},
		// all
		{"all of none", AllOf(), true, ""},
		{"all true", AllOf(Eq("on", true), AtLeast("num", 1)), true, ""},
		{"all one false", AllOf(Eq("on", true), Eq("num", 0.0)), false, ""},
		{"all error propagates", AllOf(Eq("boom", "x"), Eq("on", true)), false, "probe exploded"},
		// any
		{"any of none", AnyOf(), false, ""},
		{"any true", AnyOf(Eq("num", 0.0), Eq("on", true)), true, ""},
		{"any all false", AnyOf(Eq("num", 0.0), Eq("off", true)), false, ""},
		{"any error propagates", AnyOf(Eq("boom", "x"), Eq("on", true)), false, "probe exploded"},
		// not
		{"not inverts false", Not(Eq("num", 0.0)), true, ""},
		{"not inverts true", Not(Eq("on", true)), false, ""},
		{"not zero subs", Cond{Op: CondNot}, false, "exactly one sub-condition"},
		{"not two subs", Cond{Op: CondNot, Subs: []Cond{AllOf(), AllOf()}}, false, "exactly one sub-condition"},
		{"not inner error", Not(Eq("boom", "x")), false, "probe exploded"},
		// unknown op
		{"unknown op", Cond{Op: "sometimes"}, false, "unknown condition op"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.cond.Eval(env)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Eval: %v", err)
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Eval error %v, want substring %q", err, tc.wantErr)
			}
			if got != tc.want {
				t.Errorf("Eval = %v, want %v", got, tc.want)
			}
		})
	}

	env.Answer = "41"
	if ok, err := AnswerIsExpected().Eval(env); err != nil || ok {
		t.Errorf("wrong answer should not verify: %v, %v", ok, err)
	}
}

// TestVerifyTreatsEvalErrorAsFailure pins Env.Verify's posture: a condition
// that cannot evaluate reads as task failure, never as success or a panic.
func TestVerifyTreatsEvalErrorAsFailure(t *testing.T) {
	env := probeEnv(map[string]any{"on": true})
	env.verify = Eq("no-such-path", true)
	if env.Verify() {
		t.Error("unresolvable condition verified as success")
	}
	env.verify = Eq("on", true)
	if !env.Verify() {
		t.Error("satisfied condition did not verify")
	}
}

// TestWalkVisitsEveryNode pins the traversal order pack tooling relies on:
// depth-first, node before subs.
func TestWalkVisitsEveryNode(t *testing.T) {
	c := AllOf(Not(Eq("a", 1.0)), AnyOf(ContainsStr("b", "x"), AtLeast("c", 2)))
	var ops []string
	c.Walk(func(n Cond) { ops = append(ops, n.Op) })
	want := []string{CondAll, CondNot, CondEquals, CondAny, CondContains, CondAtLeast}
	if len(ops) != len(want) {
		t.Fatalf("visited %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("visited %v, want %v", ops, want)
		}
	}
}

// TestSetupOps covers each declarative setup op's happy path — the probe
// sees the seeded state — and every builder rejection an invalid pack can
// trigger.
func TestSetupOps(t *testing.T) {
	probe := func(t *testing.T, env *Env, err error, path string) any {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		v, err := env.Probe(path)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	t.Run("word paragraphs", func(t *testing.T) {
		env, err := wordEnv([]SetupOp{{Op: SetupWordParagraphs, Texts: []string{"alpha beta", "beta"}}})
		if got := probe(t, env, err, "occurrences.beta"); got != 2.0 {
			t.Errorf("occurrences.beta = %v, want 2", got)
		}
	})
	t.Run("word rejects foreign op", func(t *testing.T) {
		if _, err := wordEnv([]SetupOp{{Op: SetupSlidesDeck, Count: 3}}); err == nil {
			t.Error("foreign setup op accepted")
		}
	})

	t.Run("excel set cell", func(t *testing.T) {
		env, err := excelEnv([]SetupOp{{Op: SetupExcelSetCell, Ref: "C22", Value: "1379.25"}})
		if got := probe(t, env, err, "cell.C22.value"); got != "1379.25" {
			t.Errorf("cell.C22.value = %v", got)
		}
	})
	t.Run("excel rejects non-string value", func(t *testing.T) {
		_, err := excelEnv([]SetupOp{{Op: SetupExcelSetCell, Ref: "A1", Value: 5.0}})
		if err == nil || !strings.Contains(err.Error(), "must be a string") {
			t.Errorf("want string-value rejection, got %v", err)
		}
	})
	t.Run("excel rejects bad ref", func(t *testing.T) {
		_, err := excelEnv([]SetupOp{{Op: SetupExcelSetCell, Ref: "not-a-ref", Value: "x"}})
		if err == nil || !strings.Contains(err.Error(), "invalid cell ref") {
			t.Errorf("want invalid-ref rejection, got %v", err)
		}
	})
	t.Run("excel rejects foreign op", func(t *testing.T) {
		if _, err := excelEnv([]SetupOp{{Op: SetupSettingsSet, Path: "wifi", Value: true}}); err == nil {
			t.Error("foreign setup op accepted")
		}
	})

	t.Run("slides deck", func(t *testing.T) {
		env, err := slidesEnv([]SetupOp{{Op: SetupSlidesDeck, Count: 12}})
		if got := probe(t, env, err, "slide-count"); got != 12.0 {
			t.Errorf("slide-count = %v, want 12", got)
		}
	})
	t.Run("slides rejects absurd deck", func(t *testing.T) {
		for _, n := range []int{-1, maxDeckSlides + 1} {
			if _, err := slidesEnv([]SetupOp{{Op: SetupSlidesDeck, Count: n}}); err == nil {
				t.Errorf("deck size %d accepted", n)
			}
		}
	})
	t.Run("slides rejects foreign op", func(t *testing.T) {
		if _, err := slidesEnv([]SetupOp{{Op: SetupWordParagraphs}}); err == nil {
			t.Error("foreign setup op accepted")
		}
	})

	t.Run("settings set", func(t *testing.T) {
		env, err := settingsEnv([]SetupOp{
			{Op: SetupSettingsSet, Path: "vpn", Value: true},
			{Op: SetupSettingsSet, Path: "proxy-server", Value: "proxy.corp:8080"},
		})
		if got := probe(t, env, err, "state.vpn"); got != true {
			t.Errorf("state.vpn = %v", got)
		}
		if got := probe(t, env, err, "state.proxy-server"); got != "proxy.corp:8080" {
			t.Errorf("state.proxy-server = %v", got)
		}
	})
	t.Run("settings rejects unknown field", func(t *testing.T) {
		_, err := settingsEnv([]SetupOp{{Op: SetupSettingsSet, Path: "warp-drive", Value: true}})
		if err == nil || !strings.Contains(err.Error(), "unknown settings field") {
			t.Errorf("want unknown-field rejection, got %v", err)
		}
	})
	t.Run("settings rejects wrong value types", func(t *testing.T) {
		if _, err := settingsEnv([]SetupOp{{Op: SetupSettingsSet, Path: "wifi", Value: "on"}}); err == nil {
			t.Error("string for a bool field accepted")
		}
		if _, err := settingsEnv([]SetupOp{{Op: SetupSettingsSet, Path: "proxy-server", Value: true}}); err == nil {
			t.Error("bool for a string field accepted")
		}
	})
	t.Run("settings rejects foreign op", func(t *testing.T) {
		if _, err := settingsEnv([]SetupOp{{Op: SetupExcelSetCell, Ref: "A1", Value: "x"}}); err == nil {
			t.Error("foreign setup op accepted")
		}
	})

	t.Run("files rejects all setup", func(t *testing.T) {
		if _, err := filesEnv([]SetupOp{{Op: SetupSettingsSet, Path: "wifi", Value: true}}); err == nil {
			t.Error("Files accepted a setup op")
		}
	})
}

// TestBuildEnvAndCheck covers the task-level validation seams packs go
// through: unknown applications and unresolvable verify paths are loud
// errors, a well-formed task checks clean, and Build panics only on tasks
// that bypassed validation.
func TestBuildEnvAndCheck(t *testing.T) {
	if _, err := (Task{ID: "x", App: "Browser"}).BuildEnv(); err == nil {
		t.Error("unknown application accepted")
	}

	bad := Task{ID: "x", App: "Word", Verify: Eq("no.such.path", true)}
	if err := bad.Check(); err == nil || !strings.Contains(err.Error(), "verify") {
		t.Errorf("unresolvable verify path not surfaced: %v", err)
	}

	good := Task{ID: "x", App: "Word", Verify: Eq("saved", false)}
	if err := good.Check(); err != nil {
		t.Errorf("clean task failed Check: %v", err)
	}

	defer func() {
		if recover() == nil {
			t.Error("Build should panic on a task BuildEnv rejects")
		}
	}()
	bad2 := Task{ID: "x", App: "Excel", Setup: []SetupOp{{Op: SetupExcelSetCell, Ref: "bad", Value: "x"}}}
	bad2.Build()
}
