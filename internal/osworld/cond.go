package osworld

import (
	"fmt"
	"strings"
)

// Verify-condition ops. A condition is a small declarative language over
// live application state: leaves probe state paths (control state, selection
// ranges, scroll positions) or compare the recorded answer against the
// ground truth; combinators compose them. The language replaces the old
// per-task `verify` closures so a task can cross a process boundary as data
// (internal/taskpack) and still verify against real application state.
const (
	CondAll      = "all"      // every sub-condition holds
	CondAny      = "any"      // at least one sub-condition holds
	CondNot      = "not"      // the single sub-condition does not hold
	CondEquals   = "equals"   // state at Path equals Value
	CondContains = "contains" // string state at Path contains Value
	CondAtLeast  = "at-least" // numeric state at Path is >= Value
	CondAnswer   = "answer"   // the trimmed recorded answer equals Expected
)

// Cond is one node of a verify condition. Value carries only JSON-scalar
// types (string, bool, float64) so a condition round-trips through a task
// pack unchanged; numeric state is compared as float64.
type Cond struct {
	Op    string
	Path  string // CondEquals, CondContains, CondAtLeast
	Value any    // string, bool, or float64
	Subs  []Cond // CondAll, CondAny, CondNot
}

// StateProbe resolves a verify-condition path against live application
// state. A path outside the application's vocabulary is an error (so a
// mistyped pack fails validation loudly); a valid path whose value does not
// exist yet (e.g. the last table of a document with no tables) resolves to
// nil, which satisfies no comparison.
type StateProbe func(path string) (any, error)

// Eval evaluates the condition against the environment. Unknown ops and
// unknown paths are errors, not false: Task.Check surfaces them at
// validation time, and Env.Verify treats them as failure.
func (c Cond) Eval(e *Env) (bool, error) {
	switch c.Op {
	case CondAll:
		for _, s := range c.Subs {
			ok, err := s.Eval(e)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	case CondAny:
		for _, s := range c.Subs {
			ok, err := s.Eval(e)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case CondNot:
		if len(c.Subs) != 1 {
			return false, fmt.Errorf("condition %q takes exactly one sub-condition, got %d", CondNot, len(c.Subs))
		}
		ok, err := c.Subs[0].Eval(e)
		return !ok && err == nil, err
	case CondAnswer:
		return strings.TrimSpace(e.Answer) == e.Expected, nil
	case CondEquals:
		v, err := e.probe(c.Path)
		if err != nil {
			return false, err
		}
		return scalarEquals(v, c.Value), nil
	case CondContains:
		v, err := e.probe(c.Path)
		if err != nil {
			return false, err
		}
		s, okS := v.(string)
		w, okW := c.Value.(string)
		if !okW {
			return false, fmt.Errorf("condition %q at %q needs a string value, got %T", CondContains, c.Path, c.Value)
		}
		return okS && strings.Contains(s, w), nil
	case CondAtLeast:
		v, err := e.probe(c.Path)
		if err != nil {
			return false, err
		}
		want, okW := asNumber(c.Value)
		if !okW {
			return false, fmt.Errorf("condition %q at %q needs a numeric value, got %T", CondAtLeast, c.Path, c.Value)
		}
		got, okG := asNumber(v)
		return okG && got >= want, nil
	default:
		return false, fmt.Errorf("unknown condition op %q", c.Op)
	}
}

// Walk visits the condition tree depth-first, the node before its subs.
func (c Cond) Walk(fn func(Cond)) {
	fn(c)
	for _, s := range c.Subs {
		s.Walk(fn)
	}
}

// scalarEquals compares a probed state value against a condition value:
// strings and bools by identity, numbers numerically (probes may yield ints,
// packs always carry float64). A nil probe value (valid path, absent state)
// equals nothing.
func scalarEquals(got, want any) bool {
	if g, ok := asNumber(got); ok {
		w, ok := asNumber(want)
		return ok && g == w
	}
	switch g := got.(type) {
	case string:
		w, ok := want.(string)
		return ok && g == w
	case bool:
		w, ok := want.(bool)
		return ok && g == w
	}
	return false
}

func asNumber(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	}
	return 0, false
}

// Condition constructors, used by the compiled-in grid and by taskpack
// conversion alike.

// AllOf requires every sub-condition.
func AllOf(subs ...Cond) Cond { return Cond{Op: CondAll, Subs: subs} }

// AnyOf requires at least one sub-condition.
func AnyOf(subs ...Cond) Cond { return Cond{Op: CondAny, Subs: subs} }

// Not inverts a condition.
func Not(sub Cond) Cond { return Cond{Op: CondNot, Subs: []Cond{sub}} }

// Eq requires state at path to equal v (string, bool, or float64).
func Eq(path string, v any) Cond { return Cond{Op: CondEquals, Path: path, Value: v} }

// ContainsStr requires string state at path to contain sub.
func ContainsStr(path, sub string) Cond { return Cond{Op: CondContains, Path: path, Value: sub} }

// AtLeast requires numeric state at path to be >= n.
func AtLeast(path string, n float64) Cond { return Cond{Op: CondAtLeast, Path: path, Value: n} }

// AnswerIsExpected requires the trimmed recorded answer to equal the task's
// expected ground truth.
func AnswerIsExpected() Cond { return Cond{Op: CondAnswer} }
