package describe

import (
	"strings"
	"testing"

	"repro/internal/forest"
	"repro/internal/uia"
	"repro/internal/ung"
)

// fixtureForest builds a small forest by hand:
//
//	root ── Home(tab) ── Font(group) ── Bold, FontColor(ref→picker)
//	     └─ Insert(tab) ── Symbols(large enum) ── s1..s60
//	shared: picker ── Blue, Red
func fixtureForest() *forest.Forest {
	mk := func(gid, name string, t uia.ControlType, parent *forest.Node) *forest.Node {
		n := &forest.Node{GID: gid, Name: name, Type: t, Parent: parent}
		if parent != nil {
			parent.Children = append(parent.Children, n)
		}
		return n
	}
	root := mk(ung.RootID, "Word", uia.WindowControl, nil)
	home := mk("tabHome", "Home", uia.TabItemControl, root)
	home.Desc = "Home ribbon tab with font and paragraph commands"
	font := mk("grpFont", "Font", uia.GroupControl, home)
	font.Desc = "Font group"
	mk("btnBold", "Bold", uia.ButtonControl, font)
	ref := mk("picker", "Font Color", uia.SplitButtonControl, font)
	ref.RefTarget = "picker"

	insert := mk("tabInsert", "Insert", uia.TabItemControl, root)
	syms := mk("grpSymbols", "Symbols", uia.ListControl, insert)
	syms.LargeEnum = true
	for i := 0; i < 60; i++ {
		s := mk("", "Sym", uia.MenuItemControl, syms)
		s.LargeEnum = true
		_ = s
	}

	picker := mk("picker", "Colors", uia.MenuControl, nil)
	mk("cellBlue", "Blue", uia.MenuItemControl, picker)
	mk("cellRed", "Red", uia.MenuItemControl, picker)

	return &forest.Forest{
		App:         "Word",
		Main:        root,
		Shared:      map[string]*forest.Node{"picker": picker},
		SharedOrder: []string{"picker"},
	}
}

func TestIDAssignmentStableAndComplete(t *testing.T) {
	f := fixtureForest()
	m := NewModel(f)
	total := f.NodeCount()
	if m.NodeCount() != total {
		t.Fatalf("ids = %d, nodes = %d", m.NodeCount(), total)
	}
	// IDs are consecutive from 0 and bijective.
	for i := 0; i < total; i++ {
		n := m.Node(i)
		if n == nil {
			t.Fatalf("id %d unassigned", i)
		}
		if m.ID(n) != i {
			t.Fatalf("id round trip failed at %d", i)
		}
	}
	if m.Node(total) != nil {
		t.Error("id past end resolved")
	}
	// Main tree ids precede shared subtree ids.
	if m.ID(f.Main) != 0 {
		t.Error("main root should be id 0")
	}
	if m.TreeOf(f.Shared["picker"]) != "picker" {
		t.Error("TreeOf wrong for shared root")
	}
}

func TestSerializeFormat(t *testing.T) {
	m := NewModel(fixtureForest())
	out := m.Serialize(FullOptions())

	if !strings.HasPrefix(out, "main-tree:\n") {
		t.Error("missing main tree header")
	}
	if !strings.Contains(out, "Bold(Button)_") {
		t.Errorf("Bold not serialized: %s", out)
	}
	// Reference node carries the ref marker with the subtree root's id.
	picker := m.Forest.Shared["picker"]
	wantRef := "(ref=" // exact id follows
	if !strings.Contains(out, wantRef) {
		t.Error("missing ref marker")
	}
	if !strings.Contains(out, "shared-subtree-") {
		t.Error("missing shared subtree header")
	}
	if !strings.Contains(out, "Blue(MenuItem)_") {
		t.Error("shared subtree content missing")
	}
	_ = picker
	// Bracket balance.
	if strings.Count(out, "[") != strings.Count(out, "]") {
		t.Error("unbalanced brackets")
	}
	// Descriptions attach to key-type/navigation nodes.
	if !strings.Contains(out, "Home(TabItem)(Home ribbon tab") {
		t.Errorf("description not attached: %s", out)
	}
}

func TestCoreTopologyPrunesLargeEnums(t *testing.T) {
	m := NewModel(fixtureForest())
	core := m.Serialize(CoreOptions())
	full := m.Serialize(FullOptions())

	if strings.Contains(core, "Sym(MenuItem)") {
		t.Error("core topology contains large enumeration items")
	}
	if strings.Contains(core, "Symbols(List)") {
		t.Error("core topology contains the large enumeration container")
	}
	if !strings.Contains(full, "Sym(MenuItem)") {
		t.Error("full topology lost large enumeration items")
	}
	// Elision marker signals further_query expansion: the pruned container
	// shows up as one elided child of Insert.
	if !strings.Contains(core, "Insert(TabItem)_5[+1]") {
		t.Errorf("missing elision marker: %s", core)
	}
	if len(core) >= len(full) {
		t.Error("core topology not smaller than full")
	}
}

func TestDepthLimit(t *testing.T) {
	// Chain deeper than the limit.
	root := &forest.Node{GID: ung.RootID, Name: "App", Type: uia.WindowControl}
	cur := root
	for i := 0; i < 10; i++ {
		n := &forest.Node{GID: "", Name: "Level", Type: uia.ButtonControl, Parent: cur}
		cur.Children = append(cur.Children, n)
		cur = n
	}
	f := &forest.Forest{App: "App", Main: root, Shared: map[string]*forest.Node{}}
	m := NewModel(f)
	out := m.Serialize(Options{MaxDepth: 3})
	if got := strings.Count(out, "Level(Button)"); got != 2 {
		t.Errorf("levels serialized = %d, want 2 (depth limit 3)", got)
	}
	if !strings.Contains(out, "+1") {
		t.Error("missing elision marker at depth limit")
	}
}

func TestSerializeSubtreeFurtherQuery(t *testing.T) {
	m := NewModel(fixtureForest())
	var symsID int
	m.Forest.Main.Walk(func(n *forest.Node) bool {
		if n.Name == "Symbols" {
			symsID = m.ID(n)
		}
		return true
	})
	out, err := m.SerializeSubtree(symsID)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "Sym(MenuItem)") != 60 {
		t.Errorf("targeted expansion missing items:\n%s", out)
	}
	if _, err := m.SerializeSubtree(99999); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestManualExclusion(t *testing.T) {
	m := NewModel(fixtureForest())
	out := m.Serialize(Options{IncludeLargeEnums: true, Exclude: map[string]bool{"tabInsert": true}})
	if strings.Contains(out, "Insert(TabItem)") {
		t.Error("excluded node serialized")
	}
	if strings.Contains(out, "Sym(MenuItem)") {
		t.Error("children of excluded node serialized")
	}
}

func TestEscapeStructuralCharacters(t *testing.T) {
	root := &forest.Node{GID: ung.RootID, Name: "App", Type: uia.WindowControl}
	odd := &forest.Node{GID: "x", Name: "Ion (Dark), v_2 [beta]", Type: uia.ButtonControl, Parent: root}
	root.Children = append(root.Children, odd)
	f := &forest.Forest{App: "App", Main: root, Shared: map[string]*forest.Node{}}
	m := NewModel(f)
	out := m.Serialize(FullOptions())
	if strings.Contains(out, "(Dark)") || strings.Contains(out, "[beta]") || strings.Contains(out, "v_2") {
		t.Errorf("structural characters leaked: %s", out)
	}
	// The only underscores left are id markers: ControlsIn counts nodes.
	if got := ControlsIn(out); got != 2 {
		t.Errorf("ControlsIn = %d, want 2", got)
	}
}

func TestTokensPerControl(t *testing.T) {
	m := NewModel(fixtureForest())
	out := m.Serialize(FullOptions())
	controls := ControlsIn(out)
	tokens := Tokens(out)
	perControl := float64(tokens) / float64(controls)
	// The paper measures ≈15 tokens per control; the heuristic should land
	// in the same regime.
	if perControl < 3 || perControl > 30 {
		t.Errorf("tokens per control = %.1f, outside plausible band", perControl)
	}
}

func TestFindLeafByName(t *testing.T) {
	m := NewModel(fixtureForest())
	n := m.FindLeafByName("bold")
	if n == nil || n.Name != "Bold" {
		t.Fatal("FindLeafByName failed")
	}
	if m.FindLeafByName("No Such Control") != nil {
		t.Error("found nonexistent control")
	}
	// Leaves only: Font (group with children) must not match.
	if m.FindLeafByName("Font") != nil {
		t.Error("non-leaf matched")
	}
}
