// Package describe converts the path-unambiguous forest into the compact,
// hierarchical textual representation consumed by the LLM (paper §3.3,
// §4.2):
//
//	name(type)(description)_id[children]
//
// Parentheses mark optional fields and square brackets encode nesting. Node
// ids are unique consecutive integers assigned once over the whole forest,
// so identifiers remain stable between the pruned core topology and
// further_query expansions. Large enumerations and manually excluded nodes
// are pruned from core topologies, with elision markers showing where
// further_query can expand.
package describe

import (
	"fmt"
	"strings"

	"repro/internal/forest"
	"repro/internal/strutil"
)

// Model binds a forest to its integer node identifiers.
type Model struct {
	Forest *forest.Forest

	byID map[int]*forest.Node
	ids  map[*forest.Node]int
	// treeOf maps every node to the id of the tree containing it: "" for
	// the main tree, otherwise the shared-subtree root's UNG id.
	treeOf map[*forest.Node]string
	// refsTo lists reference nodes pointing at each shared subtree.
	refsTo map[string][]*forest.Node

	// coreText and fullText are the two standard renderings, memoized at
	// construction: the model is frozen once built (concurrent sessions
	// share it read-only), and the executor re-reads both on every prompt
	// and further_query, so rendering them once here removes the whole
	// serialization walk from the per-session hot path.
	coreText string
	fullText string
}

// NewModel assigns consecutive integer ids across the main tree (first) and
// every shared subtree (in externalization order).
func NewModel(f *forest.Forest) *Model {
	m := &Model{
		Forest: f,
		byID:   make(map[int]*forest.Node),
		ids:    make(map[*forest.Node]int),
		treeOf: make(map[*forest.Node]string),
		refsTo: make(map[string][]*forest.Node),
	}
	next := 0
	assign := func(tree *forest.Node, treeID string) {
		tree.Walk(func(n *forest.Node) bool {
			m.byID[next] = n
			m.ids[n] = next
			m.treeOf[n] = treeID
			if n.IsRef() {
				m.refsTo[n.RefTarget] = append(m.refsTo[n.RefTarget], n)
			}
			next++
			return true
		})
	}
	assign(f.Main, "")
	for _, id := range f.SharedOrder {
		assign(f.Shared[id], id)
	}
	m.coreText = m.Serialize(CoreOptions())
	m.fullText = m.Serialize(FullOptions())
	return m
}

// Core returns the memoized core-topology rendering — identical to
// Serialize(CoreOptions()) but free after construction.
func (m *Model) Core() string { return m.coreText }

// Full returns the memoized complete rendering — identical to
// Serialize(FullOptions()) but free after construction.
func (m *Model) Full() string { return m.fullText }

// Node returns the forest node for an integer id, or nil.
func (m *Model) Node(id int) *forest.Node { return m.byID[id] }

// ID returns the integer id of a node (-1 if unknown).
func (m *Model) ID(n *forest.Node) int {
	if id, ok := m.ids[n]; ok {
		return id
	}
	return -1
}

// NodeCount returns the number of identified nodes.
func (m *Model) NodeCount() int { return len(m.byID) }

// TreeOf returns the id of the tree containing n ("" = main tree).
func (m *Model) TreeOf(n *forest.Node) string { return m.treeOf[n] }

// RefsTo returns the reference nodes pointing at a shared subtree root.
func (m *Model) RefsTo(subtree string) []*forest.Node { return m.refsTo[subtree] }

// FindLeafByName returns the first leaf node whose name matches (after
// normalization), preferring main-tree nodes. Tooling and tests use it;
// the executor resolves ids, never names.
func (m *Model) FindLeafByName(name string) *forest.Node {
	want := strutil.Normalize(name)
	var hit *forest.Node
	trees := append([]*forest.Node{m.Forest.Main}, m.sharedInOrder()...)
	for _, tree := range trees {
		tree.Walk(func(n *forest.Node) bool {
			if hit != nil {
				return false
			}
			if n.IsLeaf() && strutil.Normalize(n.Name) == want {
				hit = n
				return false
			}
			return true
		})
		if hit != nil {
			return hit
		}
	}
	return hit
}

func (m *Model) sharedInOrder() []*forest.Node {
	var out []*forest.Node
	for _, id := range m.Forest.SharedOrder {
		out = append(out, m.Forest.Shared[id])
	}
	return out
}

// Options tunes serialization.
type Options struct {
	// MaxDepth limits the serialized depth below each tree root (0 =
	// unlimited). The paper's core topology uses six levels.
	MaxDepth int
	// IncludeLargeEnums keeps large enumerations (font lists, symbol
	// grids); core topologies drop them.
	IncludeLargeEnums bool
	// Exclude prunes nodes by UNG id — the manually identified exclusions
	// of paper §3.3.
	Exclude map[string]bool
	// DescLimit truncates attached descriptions to this many runes
	// (default 60).
	DescLimit int
}

// CoreOptions returns the default core-topology settings. The paper prunes
// to roughly six navigation levels; this UNG additionally materializes the
// container levels between navigation hops (tab bar, tab panel, group,
// popup body), so the equivalent structural depth here is nine.
func CoreOptions() Options { return Options{MaxDepth: 9, DescLimit: 60} }

// FullOptions serializes everything.
func FullOptions() Options { return Options{IncludeLargeEnums: true, DescLimit: 60} }

func (o *Options) fill() {
	if o.DescLimit == 0 {
		o.DescLimit = 60
	}
}

// Serialize renders the forest: the main tree, then each shared subtree
// introduced by a "shared_subtree" header that doubles as the entry map
// (reference nodes carry ref=<id> markers pointing at subtree roots).
func (m *Model) Serialize(opt Options) string {
	opt.fill()
	var b strings.Builder
	b.WriteString("main-tree:\n")
	m.writeNode(&b, m.Forest.Main, 0, opt)
	b.WriteByte('\n')
	for _, id := range m.Forest.SharedOrder {
		root := m.Forest.Shared[id]
		if !opt.IncludeLargeEnums && root.LargeEnum {
			continue
		}
		fmt.Fprintf(&b, "shared-subtree-%d:\n", m.ids[root])
		m.writeNode(&b, root, 0, opt)
		b.WriteByte('\n')
	}
	return b.String()
}

// SerializeSubtree renders one node's full substructure (no depth limit) —
// the targeted branch mode of further_query. Large enumerations are
// included: if the caller asks for the branch, it wants the contents.
func (m *Model) SerializeSubtree(id int) (string, error) {
	n := m.byID[id]
	if n == nil {
		return "", fmt.Errorf("describe: unknown node id %d", id)
	}
	var b strings.Builder
	opt := FullOptions()
	opt.fill()
	m.writeNode(&b, n, 0, opt)
	return b.String(), nil
}

// writeNode renders n in the compact format. depth counts levels below the
// tree root; children beyond MaxDepth, large enumerations, and excluded
// nodes are replaced by a single elision marker "+".
func (m *Model) writeNode(b *strings.Builder, n *forest.Node, depth int, opt Options) {
	name := n.Name
	if name == "" {
		name = "[Unnamed]"
	}
	b.WriteString(escape(name))
	fmt.Fprintf(b, "(%s)", n.Type)
	if d := m.descFor(n, opt); d != "" {
		fmt.Fprintf(b, "(%s)", escape(d))
	}
	if n.IsRef() {
		target := m.Forest.Shared[n.RefTarget]
		fmt.Fprintf(b, "(ref=%d)", m.ids[target])
	}
	fmt.Fprintf(b, "_%d", m.ids[n])

	if len(n.Children) == 0 {
		return
	}
	visible, elided := m.partitionChildren(n, depth, opt)
	if len(visible) == 0 && elided == 0 {
		return
	}
	b.WriteByte('[')
	for i, c := range visible {
		if i > 0 {
			b.WriteByte(',')
		}
		m.writeNode(b, c, depth+1, opt)
	}
	if elided > 0 {
		if len(visible) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "+%d", elided) // elision marker: further_query expands
	}
	b.WriteByte(']')
}

func (m *Model) partitionChildren(n *forest.Node, depth int, opt Options) (visible []*forest.Node, elided int) {
	for _, c := range n.Children {
		switch {
		case opt.Exclude != nil && opt.Exclude[c.GID]:
			elided++
		case !opt.IncludeLargeEnums && c.LargeEnum:
			elided++
		case opt.MaxDepth > 0 && depth+1 >= opt.MaxDepth:
			elided++
		default:
			visible = append(visible, c)
		}
	}
	return visible, elided
}

// descFor selects and truncates the description (paper §4.2): key-type
// controls and non-leaf navigation nodes always carry their descriptions;
// when several siblings share a name and at least one is a key type, all of
// them get described.
func (m *Model) descFor(n *forest.Node, opt Options) string {
	if n.Desc == "" {
		return ""
	}
	attach := n.Type.IsKeyType() || !n.IsLeaf()
	if !attach && n.Parent != nil {
		for _, sib := range n.Parent.Children {
			if sib != n && sib.Name == n.Name && sib.Type.IsKeyType() {
				attach = true
				break
			}
		}
	}
	if !attach {
		return ""
	}
	return strutil.TruncateChars(n.Desc, opt.DescLimit)
}

// escape keeps the structural characters unambiguous inside names and
// descriptions.
var escaper = strings.NewReplacer("(", "⟨", ")", "⟩", "[", "⟦", "]", "⟧", ",", ";", "_", "-")

func escape(s string) string { return escaper.Replace(s) }

// Tokens estimates the LLM token cost of a serialized topology (§5.4
// measures ≈15 tokens per control under o200k_base).
func Tokens(serialized string) int { return strutil.EstimateTokens(serialized) }

// ControlsIn counts the serialized controls (ids emitted) in a rendering —
// the denominator of the tokens-per-control metric.
func ControlsIn(serialized string) int {
	return strings.Count(serialized, "_") // ids are the only remaining underscores
}
