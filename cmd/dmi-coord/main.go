// Command dmi-coord is the distributed-serving coordinator: it fans the
// full evaluation grid (every Table 3 setting × every catalog task) out
// across N dmi-serve replicas over the POST /session protocol and
// aggregates the outcomes in grid order — so its report is byte-identical
// to the in-process `dmi-bench` run, no matter which replica served which
// cell or in what order they finished. Sessions are stateless, idempotent
// functions of (model, task, setting, run), so a replica failure mid-run is
// handled by re-dispatching the failed cell to a surviving replica — and a
// replica that comes back is re-probed (half-open /healthz circuit) and
// returned to rotation.
//
// Usage:
//
//	dmi-coord -replicas http://a:8480,http://b:8480 [-taskpack FILE] [-runs 3] [-inflight 4] [-batch 16] [-wait 3m] [-json FILE]
//	dmi-coord -membership FILE [-stream] [-soak 10m -rate 20] ...
//
// Exactly one of -replicas (fixed fleet) or -membership (elastic fleet: one
// base URL per line, re-read on SIGHUP so replicas join and leave mid-run)
// selects the fleet. -stream replaces the fixed fan-out with a work queue
// that feeds cells as fleet capacity frees up — concurrency follows
// failures, recoveries, joins, and leaves. -soak replaces the single grid
// pass with a sustained open-loop load (cell arrivals on a fixed-rate
// clock, latency percentiles and recovery counts in the -json baseline) —
// the regression gate for the recovery path. -batch coalesces up to N cells
// into one POST /v1/cells per request against replicas that speak the
// versioned protocol; replicas that answer only the legacy routes draw a
// deprecation note and keep taking one cell per request. -pprof serves
// net/http/pprof profiles on a second listener for production profiling.
//
// The evaluation report goes to stdout (same sections, same bytes as
// `dmi-bench`); coordination telemetry — per-replica cell counts, retries,
// recoveries, and the aggregate warm-hit ratio scraped from each replica's
// GET /stats — goes to stderr.
//
// The coordinator and every replica must serve the same task pack: cells are
// resolved by task id on both sides, so mismatched packs would silently score
// different task content. The coordinator checks each replica's advertised
// pack identity during the health wait and refuses to dispatch against a
// mismatched replica, naming the replica and both hashes; every session
// request additionally carries the pack name and hash, which a mismatched
// replica rejects with 409. A replica recovering from a down-mark is held
// out of rotation until its probed pack identity matches again.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof: registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/agent"
	"repro/internal/bench"
	"repro/internal/modelstore"
	"repro/internal/serveproto"
	"repro/internal/taskpack"
)

// errUsage marks a flag-parse failure the FlagSet has already reported to
// stderr; main must not print it again.
var errUsage = errors.New("invalid usage")

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the CLI against the given argument list and streams; main is
// a thin exit-code shim around it so tests can drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, args, stdout, stderr)
}

// runCtx is run with an explicit lifetime, the seam tests drive.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dmi-coord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	replicasFlag := fs.String("replicas", "", "comma-separated dmi-serve base URLs (exactly one of -replicas / -membership)")
	membershipFile := fs.String("membership", "", "membership file, one dmi-serve base URL per line, re-read on SIGHUP (exactly one of -replicas / -membership)")
	packFile := fs.String("taskpack", "", "task pack JSON to resolve cells from (default: the built-in osworld-w grid); every replica must serve the same pack")
	runs := fs.Int("runs", 3, "seeded repetitions per task (paper: 3)")
	inflight := fs.Int("inflight", 4, "max cells in flight per replica")
	batch := fs.Int("batch", 1, "coalesce up to this many cells per POST /v1/cells against v1 replicas (1 = one cell per request)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	stream := fs.Bool("stream", false, "feed cells from a work queue as fleet capacity frees up, instead of a fixed pre-sharded fan-out")
	// The default matches RemoteOptions' own: sized to outlast the slowest
	// legitimate cell (max runs on a cold model), comfortably inside
	// dmi-serve's 10-minute write-timeout hang guard — a slow-but-healthy
	// replica must not read as a failure.
	timeout := fs.Duration("timeout", 5*time.Minute, "per-cell request timeout (a hung replica becomes a detected failure, not a stall)")
	wait := fs.Duration("wait", 3*time.Minute, "how long to wait for every replica's /healthz (replicas prewarm the catalog at startup)")
	probe := fs.Duration("probe", time.Second, "base interval between half-open recovery probes of a down-marked replica (negative disables recovery)")
	soak := fs.Duration("soak", 0, "sustained-load soak for this duration instead of one grid pass (open-loop arrivals; see -rate)")
	rate := fs.Float64("rate", 10, "target cell arrival rate per second during -soak")
	jsonOut := fs.String("json", "", "write a machine-readable baseline (cells/sec, per-replica shares, soak percentiles) to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage was printed, not an error
		}
		return errUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "dmi-coord: unexpected argument %q\n", fs.Arg(0))
		return errUsage
	}
	if (*replicasFlag == "") == (*membershipFile == "") {
		fmt.Fprintln(stderr, "dmi-coord: exactly one of -replicas or -membership is required")
		return errUsage
	}
	if *runs > serveproto.MaxRuns {
		// Fail at flag parse, not after minutes of replica prewarm — every
		// replica would reject the first cell with the same 400.
		fmt.Fprintf(stderr, "dmi-coord: -runs %d exceeds the per-cell cap of %d\n", *runs, serveproto.MaxRuns)
		return errUsage
	}
	if *soak > 0 && *rate <= 0 {
		fmt.Fprintf(stderr, "dmi-coord: -rate %g must be positive with -soak\n", *rate)
		return errUsage
	}
	if *batch < 1 || *batch > serveproto.MaxBatchCells {
		fmt.Fprintf(stderr, "dmi-coord: -batch %d must be in [1, %d]\n", *batch, serveproto.MaxBatchCells)
		return errUsage
	}
	var replicas []string
	if *membershipFile != "" {
		var err error
		replicas, err = readMembership(*membershipFile)
		if err != nil {
			return fmt.Errorf("dmi-coord: %w", err)
		}
	} else {
		replicas = strings.Split(*replicasFlag, ",")
	}

	reg, err := loadRegistry(*packFile)
	if err != nil {
		return fmt.Errorf("dmi-coord: %w", err)
	}
	if *pprofAddr != "" {
		// A second listener, as in dmi-serve: profile scrapes never contend
		// with dispatch traffic. net/http/pprof registered on the default mux.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("dmi-coord: pprof: %w", err)
		}
		defer pln.Close()
		go http.Serve(pln, nil)
		fmt.Fprintf(stderr, "dmi-coord: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}
	rd, err := bench.NewRemoteDispatcher(replicas, bench.RemoteOptions{
		InFlight:      *inflight,
		Batch:         *batch,
		Client:        &http.Client{Timeout: *timeout},
		Pack:          reg.Name(),
		PackHash:      reg.Hash(),
		ProbeInterval: *probe,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "dmi-coord: "+format+"\n", args...)
		},
	})
	if err != nil {
		return fmt.Errorf("dmi-coord: %w", err)
	}
	defer rd.Close()
	if *membershipFile != "" {
		// SIGHUP re-reads the membership file and diffs it against the
		// current fleet — added URLs join the rotation, missing ones leave.
		// A reload problem (unreadable file, bad URL) is logged, never
		// fatal: a long-lived run must survive a botched edit.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					if err := reloadMembership(rd, *membershipFile, stderr); err != nil {
						fmt.Fprintf(stderr, "dmi-coord: membership reload: %v\n", err)
					}
				}
			}
		}()
	}
	if err := waitHealthy(ctx, rd.Live(), reg, *wait, stderr); err != nil {
		return fmt.Errorf("dmi-coord: %w", err)
	}

	if *soak > 0 {
		return runSoakMode(ctx, rd, reg, *soak, *rate, *runs, *inflight, *batch, *jsonOut, stderr)
	}

	cells := bench.GridCellsIn(reg, *runs)
	mode := "fixed fan-out"
	if *stream {
		mode = "streaming work queue"
	}
	if *batch > 1 {
		mode += fmt.Sprintf(", batching ≤%d cells/request", *batch)
	}
	fmt.Fprintf(stderr, "dmi-coord: dispatching %d cells (%d settings × %d tasks, %d runs each) from pack %s across %d replicas (%s), ≤%d in flight each…\n",
		len(cells), len(bench.Matrix()), len(cells)/len(bench.Matrix()), *runs, reg.Name(), len(rd.Live()), mode, *inflight)
	start := time.Now()
	var rep *bench.Report
	if *stream {
		rep, err = bench.RunStreamedIn(ctx, reg, rd, *runs)
	} else {
		// A batch occupies one in-flight slot but carries up to -batch
		// cells, so the fan-out must be scaled by the batch factor to keep
		// every replica's slots saturated with full batches.
		concurrency := *inflight * len(rd.Live()) * *batch
		rep, err = bench.RunDispatchedIn(ctx, reg, rd, *runs, concurrency)
	}
	if err != nil {
		var mismatch *bench.PackMismatchError
		if errors.As(err, &mismatch) {
			// A replica passed the health check but answered a session with
			// 409 — its pack changed out from under the run (e.g. it was
			// restarted with a different -taskpack). Name the replica and
			// both identities so the operator knows exactly what to restart.
			fmt.Fprintf(stderr, "dmi-coord: pack mismatch: %v\n", mismatch)
			fmt.Fprintf(stderr, "dmi-coord: restart that replica with the same -taskpack as this coordinator (pack %s, hash %s), or rerun dmi-coord with the replica's pack\n",
				reg.Name(), reg.Hash())
		}
		return fmt.Errorf("dmi-coord: %w", err)
	}
	elapsed := time.Since(start)

	// Scrape every replica that survived the run. A replica that died
	// mid-run is tolerated — its cells were re-dispatched — but the report's
	// token section comes from these scrapes, so losing every replica
	// between the last cell and here is an error, not a silently wrong
	// report.
	stats := scrapeStats(ctx, rd.Live(), stderr)
	tokens := map[string]int{}
	var agg modelstore.Stats
	var expansions int64
	for _, st := range stats {
		agg.Hits += st.Store.Hits
		agg.Misses += st.Store.Misses
		expansions += st.Expansions
		if len(tokens) == 0 {
			tokens = st.CoreTokens
		}
	}
	if len(tokens) == 0 {
		return errors.New("dmi-coord: no replica /stats reachable after the run; refusing to print a report with an empty token section")
	}
	warmHit := serveproto.HitRatio(agg)

	// The report, byte-identical to dmi-bench's default sections.
	rep.WriteTable3(stdout)
	fmt.Fprintln(stdout)
	rep.WriteFig5(stdout)
	rep.WriteFig6(stdout)
	fmt.Fprintln(stdout)
	rep.WriteOneShot(stdout)
	fmt.Fprintln(stdout)
	rep.WriteTokens(stdout, &agent.Models{CoreTokens: tokens})

	// Coordination telemetry.
	fmt.Fprintf(stderr, "dmi-coord: %d cells in %.2fs (%.1f cells/s), %d re-dispatches, aggregate warm-hit ratio %.3f\n",
		len(cells), elapsed.Seconds(), float64(len(cells))/elapsed.Seconds(), rd.Retries(), warmHit)
	if expansions > 0 {
		// Replicas that also served distributed-rip traffic (dmi-model
		// -replicas) carry the frame ledger in their stats; surface it so an
		// operator can see rip work sharing the fleet with cell serving.
		fmt.Fprintf(stderr, "dmi-coord: replicas additionally expanded %d rip frames\n", expansions)
	}
	writeReplicaLines(stderr, rd)

	if *jsonOut != "" {
		if err := writeBaseline(*jsonOut, rd, *runs, *inflight, *batch, len(cells), elapsed, warmHit, nil); err != nil {
			return fmt.Errorf("dmi-coord: baseline: %w", err)
		}
		fmt.Fprintf(stderr, "dmi-coord: baseline written to %s\n", *jsonOut)
	}
	return nil
}

// writeReplicaLines prints each replica's share of the run to the telemetry
// stream, including its recovery count and current rotation state.
func writeReplicaLines(stderr io.Writer, rd *bench.RemoteDispatcher) {
	for _, rs := range rd.Stats() {
		state := "live"
		switch {
		case rs.Removed:
			state = "removed"
		case rs.Down:
			state = "down"
		}
		fmt.Fprintf(stderr, "dmi-coord:   %-28s %4d cells, %d failures, %d recoveries, %s\n",
			rs.BaseURL, rs.Cells, rs.Failures, rs.Recoveries, state)
	}
}

// readMembership parses a membership file: one replica base URL per line,
// blank lines and #-comments skipped.
func readMembership(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var urls []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		urls = append(urls, line)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("%s: no replica URLs", path)
	}
	return urls, nil
}

// reloadMembership re-reads the membership file and diffs it against the
// dispatcher's current fleet: URLs no longer listed are removed from
// rotation, newly listed ones are added. Per-replica problems (a malformed
// URL, an already-removed entry) are logged and skipped so one bad line
// cannot take down the reload.
func reloadMembership(rd *bench.RemoteDispatcher, path string, stderr io.Writer) error {
	urls, err := readMembership(path)
	if err != nil {
		return err
	}
	want := make(map[string]bool, len(urls))
	var normalized []string
	for _, raw := range urls {
		base, err := bench.NormalizeReplicaURL(raw)
		if err != nil {
			fmt.Fprintf(stderr, "dmi-coord: membership: %v\n", err)
			continue
		}
		if !want[base] {
			want[base] = true
			normalized = append(normalized, base)
		}
	}
	if len(normalized) == 0 {
		return fmt.Errorf("%s: no valid replica URLs", path)
	}
	have := make(map[string]bool)
	for _, base := range rd.Members() {
		have[base] = true
		if !want[base] {
			if err := rd.RemoveReplica(base); err != nil {
				fmt.Fprintf(stderr, "dmi-coord: membership: %v\n", err)
			}
		}
	}
	for _, base := range normalized {
		if !have[base] {
			if err := rd.AddReplica(base); err != nil {
				fmt.Fprintf(stderr, "dmi-coord: membership: %v\n", err)
			}
		}
	}
	return nil
}

// loadRegistry resolves the -taskpack flag to a task registry: the built-in
// grid when the flag is empty, otherwise a validated pack loaded from the
// file. Reading the file here keeps internal/taskpack pure ([]byte in, never
// the filesystem).
func loadRegistry(path string) (*taskpack.Registry, error) {
	if path == "" {
		return taskpack.Builtin(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	reg, err := taskpack.Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reg, nil
}

// waitHealthy polls every replica's /healthz until it answers ready or the
// wait budget runs out, then checks the replica's advertised pack identity
// against the run's registry — a healthy replica serving the wrong pack is a
// configuration error worth failing on before any cell is dispatched, with
// the replica and both hashes named. Replicas prewarm the whole catalog
// before listening on /healthz, so this is where the coordinator absorbs
// replica startup. The budget is shared across replicas and carried by a
// context deadline, so a parent cancellation (^C) is distinguishable from
// the budget running out, and the ticker keeps probes on a fixed cadence
// instead of drifting by probe latency the way sleep-after-probe loops do.
func waitHealthy(ctx context.Context, replicas []string, reg *taskpack.Registry, wait time.Duration, stderr io.Writer) error {
	ctx, cancel := context.WithTimeout(ctx, wait)
	defer cancel()
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for _, base := range replicas {
		var hz serveproto.Health
		for !probeHealthz(ctx, base, &hz) {
			select {
			case <-ctx.Done():
				if err := context.Cause(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
					return err // parent canceled; not a health verdict
				}
				return fmt.Errorf("replica %s not healthy after %s", base, wait)
			case <-tick.C:
			}
		}
		// An empty advertised pack means a pre-pack replica; the per-session
		// handshake is skipped for it too, so don't fail the wait.
		if (hz.Pack != "" && hz.Pack != reg.Name()) ||
			(hz.PackHash != "" && hz.PackHash != reg.Hash()) {
			return fmt.Errorf("replica %s serves task pack %s (hash %.12s), this run needs %s (hash %.12s); restart it with the coordinator's -taskpack",
				base, hz.Pack, hz.PackHash, reg.Name(), reg.Hash())
		}
		if hz.Proto < serveproto.ProtoV1 {
			// Pre-versioning replica: it works for this run over the legacy
			// aliases, but those are a one-release compatibility surface and
			// -batch cannot reach it.
			fmt.Fprintf(stderr, "dmi-coord: replica %s answers only deprecated legacy routes (no /v1 surface); upgrade it before the aliases are removed\n", base)
		}
		fmt.Fprintf(stderr, "dmi-coord: replica %s is ready\n", base)
	}
	return nil
}

// probeClient bounds a single health probe or stats scrape so one hanging
// connection cannot eat the whole -wait budget (waitHealthy only checks its
// deadline between probes).
var probeClient = &http.Client{Timeout: 5 * time.Second}

// probeHealthz reports whether base answered /healthz ready, filling *hz
// with the replica's advertised identity on success.
func probeHealthz(ctx context.Context, base string, hz *serveproto.Health) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := probeClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	*hz = serveproto.Health{}
	return resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(hz) == nil && hz.OK
}

// scrapeStats fetches GET /stats from each replica, skipping unreachable
// ones with a note.
func scrapeStats(ctx context.Context, replicas []string, stderr io.Writer) []serveproto.StatsResponse {
	var out []serveproto.StatsResponse
	for _, base := range replicas {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
		if err != nil {
			continue
		}
		resp, err := probeClient.Do(req)
		if err != nil {
			fmt.Fprintf(stderr, "dmi-coord: stats scrape failed for %s: %v\n", base, err)
			continue
		}
		var st serveproto.StatsResponse
		if resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d", resp.StatusCode)
		} else {
			err = json.NewDecoder(resp.Body).Decode(&st)
		}
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(stderr, "dmi-coord: stats scrape failed for %s: %v\n", base, err)
			continue
		}
		out = append(out, st)
	}
	return out
}

// coordBaseline is the machine-readable perf record CI uploads per run
// (BENCH_coord.json): grid fan-out throughput at a given replica count,
// plus — for soak runs — the open-loop latency/recovery record.
// Wall-clock fields vary per host; the structure is what downstream trend
// tooling keys on.
type coordBaseline struct {
	Replicas       int                  `json:"replicas"`
	InFlight       int                  `json:"inflight"`
	Batch          int                  `json:"batch"`
	Runs           int                  `json:"runs"`
	Cells          int                  `json:"cells"`
	ElapsedSeconds float64              `json:"elapsed_seconds"`
	CellsPerSecond float64              `json:"cells_per_second"`
	Retries        int                  `json:"retries"`
	WarmHitRatio   float64              `json:"warm_hit_ratio"`
	PerReplica     []bench.ReplicaStats `json:"per_replica"`
	Soak           *soakStats           `json:"soak,omitempty"`
}

func writeBaseline(path string, rd *bench.RemoteDispatcher, runs, inflight, batch, cells int, elapsed time.Duration, warmHit float64, soak *soakStats) error {
	b := coordBaseline{
		Replicas:       len(rd.Stats()),
		InFlight:       inflight,
		Batch:          batch,
		Runs:           runs,
		Cells:          cells,
		ElapsedSeconds: elapsed.Seconds(),
		Retries:        rd.Retries(),
		WarmHitRatio:   warmHit,
		PerReplica:     rd.Stats(),
		Soak:           soak,
	}
	if b.ElapsedSeconds > 0 {
		b.CellsPerSecond = float64(b.Cells) / b.ElapsedSeconds
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
