package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/bench"
	"repro/internal/serveproto"
)

func TestBadFlagIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-runs", "lots"}, &out, &errb); err == nil {
		t.Fatal("expected a flag-parse error")
	}
	if err := run([]string{"-replicas", "http://a:1", "stray"}, &out, &errb); err == nil {
		t.Fatal("expected an error for a stray positional argument")
	}
	if err := run(nil, &out, &errb); !errors.Is(err, errUsage) {
		t.Fatalf("missing fleet selection should be a usage error, got %v", err)
	}
	if !strings.Contains(errb.String(), "exactly one of -replicas or -membership") {
		t.Errorf("fleet-selection message absent from stderr:\n%s", errb.String())
	}
	if err := run([]string{"-replicas", "http://a:1", "-membership", "members.txt"}, &out, &errb); !errors.Is(err, errUsage) {
		t.Fatalf("both -replicas and -membership should be a usage error, got %v", err)
	}
	if err := run([]string{"-replicas", "not-a-url"}, &out, &errb); err == nil || errors.Is(err, errUsage) {
		t.Fatalf("bad replica URL should be a hard error, got %v", err)
	}
	if err := run([]string{"-replicas", "http://a:1", "-runs", fmt.Sprint(serveproto.MaxRuns + 1)}, &out, &errb); !errors.Is(err, errUsage) {
		t.Fatalf("over-cap -runs should fail at flag parse, got %v", err)
	}
	if !strings.Contains(errb.String(), "per-cell cap") {
		t.Errorf("over-cap message absent from stderr:\n%s", errb.String())
	}
	if err := run([]string{"-replicas", "http://a:1", "-soak", "1s", "-rate", "0"}, &out, &errb); !errors.Is(err, errUsage) {
		t.Fatalf("non-positive -rate with -soak should be a usage error, got %v", err)
	}
	if !strings.Contains(errb.String(), "must be positive with -soak") {
		t.Errorf("bad-rate message absent from stderr:\n%s", errb.String())
	}
	for _, batch := range []string{"0", "-2", fmt.Sprint(serveproto.MaxBatchCells + 1)} {
		if err := run([]string{"-replicas", "http://a:1", "-batch", batch}, &out, &errb); !errors.Is(err, errUsage) {
			t.Fatalf("-batch %s should be a usage error, got %v", batch, err)
		}
	}
	if !strings.Contains(errb.String(), "-batch") {
		t.Errorf("bad-batch message absent from stderr:\n%s", errb.String())
	}
	if err := run([]string{"-membership", filepath.Join(t.TempDir(), "absent.txt")}, &out, &errb); err == nil || errors.Is(err, errUsage) {
		t.Fatalf("unreadable membership file should be a hard error, got %v", err)
	}
}

func TestHelpFlagIsNotAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h should print usage and succeed, got %v", err)
	}
	if !strings.Contains(errb.String(), "Usage") {
		t.Errorf("usage text missing from stderr:\n%s", errb.String())
	}
}

func TestUnhealthyReplicaTimesOut(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "warming up", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	var out, errb bytes.Buffer
	err := run([]string{"-replicas", srv.URL, "-wait", "200ms"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "not healthy") {
		t.Fatalf("never-healthy replica should fail startup, got %v", err)
	}
}

// replica is an in-process dmi-serve stand-in speaking the serveproto
// protocol from shared warm models, with injectable failure points.
type replica struct {
	models *agent.Models
	// failAfter starts answering 500 once this many cells were served
	// (-1 = never) — the forced mid-run replica failure of the issue's
	// acceptance criteria. Permanent: /healthz fails with it, so the
	// replica never recovers.
	failAfter int64
	// outage is a switchable outage — sessions and /healthz both 500 while
	// set — so soak tests can take a replica down and bring it back.
	outage atomic.Bool
	// v1 makes the replica advertise serveproto.ProtoV1 and answer the
	// versioned route set, including POST /v1/cells; left false it is a
	// faithful pre-versioning replica (legacy routes only, no proto field).
	v1         bool
	served     atomic.Int64
	batchCalls atomic.Int64 // POST /v1/cells envelopes received
}

// failing reports whether an injected failure mode is active.
func (rp *replica) failing() bool {
	return rp.outage.Load() || (rp.failAfter >= 0 && rp.served.Load() >= rp.failAfter)
}

func (rp *replica) handler() http.Handler {
	mux := http.NewServeMux()
	healthz := func(w http.ResponseWriter, r *http.Request) {
		if rp.failing() {
			http.Error(w, "injected outage", http.StatusInternalServerError)
			return
		}
		hz := serveproto.Health{OK: true, Apps: len(agent.AppNames())}
		if rp.v1 {
			hz.Proto = serveproto.ProtoV1
		}
		json.NewEncoder(w).Encode(hz)
	}
	stats := func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serveproto.StatsResponse{
			Sessions:   rp.served.Load(),
			Store:      agent.StoreStats(),
			CoreTokens: rp.models.CoreTokens,
		})
	}
	session := func(w http.ResponseWriter, r *http.Request) {
		if rp.failing() {
			http.Error(w, "injected replica failure", http.StatusInternalServerError)
			return
		}
		var req serveproto.SessionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		set, task, err := bench.ResolveCell(bench.Cell{App: req.App, Task: req.Task, Setting: req.Setting, Runs: req.Runs})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		outcomes := bench.RunCell(rp.models, set, task, req.Runs, 1)
		rp.served.Add(1)
		json.NewEncoder(w).Encode(serveproto.SessionResponse{
			App: task.App, Task: task.ID, Setting: set.Label, Runs: req.Runs, Outcomes: outcomes,
		})
	}
	mux.HandleFunc("/healthz", healthz)
	mux.HandleFunc("/stats", stats)
	mux.HandleFunc("/session", session)
	if rp.v1 {
		mux.HandleFunc("/v1/healthz", healthz)
		mux.HandleFunc("/v1/stats", stats)
		mux.HandleFunc("/v1/session", session)
		mux.HandleFunc("/v1/cells", func(w http.ResponseWriter, r *http.Request) {
			if rp.failing() {
				http.Error(w, "injected replica failure", http.StatusInternalServerError)
				return
			}
			var req serveproto.BatchRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			rp.batchCalls.Add(1)
			resp := serveproto.BatchResponse{Results: make([]serveproto.BatchCellResult, len(req.Cells))}
			for i, cr := range req.Cells {
				set, task, err := bench.ResolveCell(bench.Cell{App: cr.App, Task: cr.Task, Setting: cr.Setting, Runs: cr.Runs})
				if err != nil {
					resp.Results[i] = serveproto.BatchCellResult{Status: http.StatusBadRequest, Error: err.Error()}
					continue
				}
				outcomes := bench.RunCell(rp.models, set, task, cr.Runs, 1)
				rp.served.Add(1)
				resp.Results[i] = serveproto.BatchCellResult{Status: http.StatusOK, Response: &serveproto.SessionResponse{
					App: task.App, Task: task.ID, Setting: set.Label, Runs: cr.Runs, Outcomes: outcomes,
				}}
			}
			json.NewEncoder(w).Encode(resp)
		})
	}
	return mux
}

var (
	groundOnce   sync.Once
	groundModels *agent.Models
	groundOut    string // dmi-bench-shaped report for runs=1
)

// groundTruth builds the in-process reference the coordinator's stdout must
// match byte-for-byte: the same sections dmi-bench prints by default.
func groundTruth(t *testing.T) (*agent.Models, string) {
	t.Helper()
	groundOnce.Do(func() {
		models, err := agent.BuildModels()
		if err != nil {
			t.Fatal(err)
		}
		rep := bench.Run(models, 1)
		var buf bytes.Buffer
		rep.WriteTable3(&buf)
		fmt.Fprintln(&buf)
		rep.WriteFig5(&buf)
		rep.WriteFig6(&buf)
		fmt.Fprintln(&buf)
		rep.WriteOneShot(&buf)
		fmt.Fprintln(&buf)
		rep.WriteTokens(&buf, models)
		groundModels, groundOut = models, buf.String()
	})
	if groundModels == nil {
		t.Fatal("ground truth unavailable")
	}
	return groundModels, groundOut
}

// TestCoordinatorByteIdentical is the acceptance criterion at the binary
// boundary: dmi-coord against two replicas emits a report byte-identical to
// the in-process bench.Run, and the baseline JSON records the fan-out.
func TestCoordinatorByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog modeling plus full-grid fan-out")
	}
	models, want := groundTruth(t)
	a := &replica{models: models, failAfter: -1}
	b := &replica{models: models, failAfter: -1}
	srvA, srvB := httptest.NewServer(a.handler()), httptest.NewServer(b.handler())
	defer srvA.Close()
	defer srvB.Close()

	jsonPath := filepath.Join(t.TempDir(), "BENCH_coord.json")
	var out, errb bytes.Buffer
	err := run([]string{
		"-replicas", srvA.URL + "," + srvB.URL,
		"-runs", "1",
		"-inflight", "3",
		"-json", jsonPath,
	}, &out, &errb)
	if err != nil {
		t.Fatalf("coordinator failed: %v\nstderr:\n%s", err, errb.String())
	}
	if out.String() != want {
		t.Errorf("coordinator report is not byte-identical to in-process bench.Run\n--- coord ---\n%s\n--- in-process ---\n%s",
			out.String(), want)
	}
	if a.served.Load() == 0 || b.served.Load() == 0 {
		t.Errorf("cells were not sharded across both replicas: %d vs %d", a.served.Load(), b.served.Load())
	}
	cells := int64(len(bench.GridCells(1)))
	if total := a.served.Load() + b.served.Load(); total != cells {
		t.Errorf("replicas served %d cells, want %d", total, cells)
	}
	for _, fragment := range []string{"cells/s", "warm-hit ratio", srvA.URL, srvB.URL, "baseline written"} {
		if !strings.Contains(errb.String(), fragment) {
			t.Errorf("coordination telemetry missing %q:\n%s", fragment, errb.String())
		}
	}
	// Both replicas are pre-versioning stand-ins, so startup must warn that
	// they only answer the deprecated legacy routes.
	if !strings.Contains(errb.String(), "deprecated legacy routes") {
		t.Errorf("no deprecation note for legacy replicas:\n%s", errb.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var base coordBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.Replicas != 2 || base.Cells != int(cells) || base.CellsPerSecond <= 0 || base.Retries != 0 {
		t.Errorf("baseline out of shape: %+v", base)
	}
	if len(base.PerReplica) != 2 || base.PerReplica[0].Cells+base.PerReplica[1].Cells != int(cells) {
		t.Errorf("per-replica shares out of shape: %+v", base.PerReplica)
	}
}

// TestCoordinatorBatchedByteIdentical: -batch against a v1 fleet coalesces
// cells into /v1/cells envelopes, records the batch factor in the baseline,
// and still emits the byte-identical report — batching is a transport
// optimization, never a semantic change.
func TestCoordinatorBatchedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog modeling plus full-grid fan-out")
	}
	models, want := groundTruth(t)
	a := &replica{models: models, failAfter: -1, v1: true}
	b := &replica{models: models, failAfter: -1, v1: true}
	srvA, srvB := httptest.NewServer(a.handler()), httptest.NewServer(b.handler())
	defer srvA.Close()
	defer srvB.Close()

	jsonPath := filepath.Join(t.TempDir(), "BENCH_coord.json")
	var out, errb bytes.Buffer
	err := run([]string{
		"-replicas", srvA.URL + "," + srvB.URL,
		"-runs", "1",
		"-batch", "8",
		"-json", jsonPath,
	}, &out, &errb)
	if err != nil {
		t.Fatalf("batched coordinator failed: %v\nstderr:\n%s", err, errb.String())
	}
	if out.String() != want {
		t.Error("batched coordinator report is not byte-identical to in-process bench.Run")
	}
	cells := int64(len(bench.GridCells(1)))
	if total := a.served.Load() + b.served.Load(); total != cells {
		t.Errorf("replicas served %d cells, want %d", total, cells)
	}
	if a.batchCalls.Load()+b.batchCalls.Load() == 0 {
		t.Error("no cell ever arrived through a /v1/cells envelope")
	}
	if !strings.Contains(errb.String(), "batching") {
		t.Errorf("telemetry should name the batching mode:\n%s", errb.String())
	}
	if strings.Contains(errb.String(), "deprecated") {
		t.Errorf("v1 replicas drew a deprecation note:\n%s", errb.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var base coordBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.Batch != 8 {
		t.Errorf("baseline batch = %d, want 8", base.Batch)
	}
	if base.Cells != int(cells) || base.Retries != 0 {
		t.Errorf("baseline out of shape: %+v", base)
	}
}

// TestCoordinatorSurvivesReplicaFailure forces one replica to die mid-run:
// the coordinator must detect it, re-dispatch its cells to the survivor,
// and still emit the byte-identical report.
func TestCoordinatorSurvivesReplicaFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog modeling plus full-grid fan-out")
	}
	models, want := groundTruth(t)
	flaky := &replica{models: models, failAfter: 7}
	healthy := &replica{models: models, failAfter: -1}
	srvF, srvH := httptest.NewServer(flaky.handler()), httptest.NewServer(healthy.handler())
	defer srvF.Close()
	defer srvH.Close()

	var out, errb bytes.Buffer
	err := run([]string{
		"-replicas", srvF.URL + "," + srvH.URL,
		"-runs", "1",
	}, &out, &errb)
	if err != nil {
		t.Fatalf("coordinator should survive one replica failure: %v\nstderr:\n%s", err, errb.String())
	}
	if out.String() != want {
		t.Error("report after mid-run replica failure is not byte-identical to in-process bench.Run")
	}
	if !strings.Contains(errb.String(), "down") {
		t.Errorf("telemetry should mark the failed replica down:\n%s", errb.String())
	}
	cells := int64(len(bench.GridCells(1)))
	if total := flaky.served.Load() + healthy.served.Load(); total != cells {
		t.Errorf("replicas served %d cells, want %d", total, cells)
	}
}

// TestMembershipReload drives the SIGHUP reload logic directly: the file is
// re-read, diffed against the current fleet, and per-line problems are
// logged without failing the reload.
func TestMembershipReload(t *testing.T) {
	rd, err := bench.NewRemoteDispatcher([]string{"http://a:1"}, bench.RemoteOptions{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	path := filepath.Join(t.TempDir(), "members.txt")
	write := func(content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var errb bytes.Buffer

	write("# the fleet\nhttp://a:1\nhttp://b:2/\n\n")
	if err := reloadMembership(rd, path, &errb); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if got := rd.Members(); len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("Members() after add = %v", got)
	}

	// a drops out, c joins; a malformed line is logged and skipped.
	write("not a url\nhttp://b:2\nhttp://c:3\n")
	if err := reloadMembership(rd, path, &errb); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if got := rd.Members(); len(got) != 2 || got[0] != "http://b:2" || got[1] != "http://c:3" {
		t.Fatalf("Members() after swap = %v", got)
	}
	if !strings.Contains(errb.String(), "not a url") {
		t.Errorf("malformed line not reported:\n%s", errb.String())
	}

	// a comes back: revived, not duplicated.
	write("http://a:1\nhttp://b:2\nhttp://c:3\n")
	if err := reloadMembership(rd, path, &errb); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if got := rd.Members(); len(got) != 3 {
		t.Fatalf("Members() after revive = %v", got)
	}
	if stats := rd.Stats(); len(stats) != 3 {
		t.Fatalf("revive must reuse the membership slot, not append: %+v", stats)
	}

	// An unreadable or empty file fails the reload and leaves the fleet as-is.
	if err := reloadMembership(rd, filepath.Join(t.TempDir(), "absent.txt"), &errb); err == nil {
		t.Error("missing membership file must fail the reload")
	}
	write("# nothing\n")
	if err := reloadMembership(rd, path, &errb); err == nil {
		t.Error("empty membership file must fail the reload")
	}
	if got := rd.Members(); len(got) != 3 {
		t.Errorf("failed reload must not change the fleet: %v", got)
	}
}

// TestCoordinatorStreamMembership: the -membership + -stream path at the
// binary boundary — the work-queue mode over a file-selected fleet still
// emits the byte-identical report.
func TestCoordinatorStreamMembership(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog modeling plus full-grid fan-out")
	}
	models, want := groundTruth(t)
	a := &replica{models: models, failAfter: -1}
	b := &replica{models: models, failAfter: -1}
	srvA, srvB := httptest.NewServer(a.handler()), httptest.NewServer(b.handler())
	defer srvA.Close()
	defer srvB.Close()
	path := filepath.Join(t.TempDir(), "members.txt")
	if err := os.WriteFile(path, []byte(srvA.URL+"\n"+srvB.URL+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	err := run([]string{"-membership", path, "-stream", "-runs", "1"}, &out, &errb)
	if err != nil {
		t.Fatalf("streaming coordinator failed: %v\nstderr:\n%s", err, errb.String())
	}
	if out.String() != want {
		t.Error("streaming report is not byte-identical to in-process bench.Run")
	}
	if a.served.Load() == 0 || b.served.Load() == 0 {
		t.Errorf("stream did not shard across the fleet: %d vs %d", a.served.Load(), b.served.Load())
	}
	if !strings.Contains(errb.String(), "streaming work queue") {
		t.Errorf("telemetry should name the streaming mode:\n%s", errb.String())
	}
}

// TestCoordinatorSoakRecovery is the acceptance scenario at the binary
// boundary: during a -soak run one replica goes down mid-soak and comes
// back; the half-open prober must return it to rotation (Recoveries ≥ 1 in
// the baseline) and it must serve further cells, while the open-loop
// arrival process rides through the outage.
func TestCoordinatorSoakRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog modeling plus a multi-second soak")
	}
	models, _ := groundTruth(t)
	steady := &replica{models: models, failAfter: -1}
	flappy := &replica{models: models, failAfter: -1}
	srvA, srvB := httptest.NewServer(steady.handler()), httptest.NewServer(flappy.handler())
	defer srvA.Close()
	defer srvB.Close()

	// Outage window: down early in the soak, back with plenty of soak left
	// for the 20ms-base prober to recover it and route cells to it again.
	go func() {
		time.Sleep(200 * time.Millisecond)
		flappy.outage.Store(true)
		time.Sleep(300 * time.Millisecond)
		flappy.outage.Store(false)
	}()

	jsonPath := filepath.Join(t.TempDir(), "BENCH_coord.json")
	var out, errb bytes.Buffer
	err := run([]string{
		"-replicas", srvA.URL + "," + srvB.URL,
		"-runs", "1",
		"-soak", "2500ms",
		"-rate", "40",
		"-probe", "20ms",
		"-json", jsonPath,
	}, &out, &errb)
	if err != nil {
		t.Fatalf("soak failed: %v\nstderr:\n%s", err, errb.String())
	}
	if !strings.Contains(errb.String(), "soak done") {
		t.Errorf("soak summary missing from telemetry:\n%s", errb.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var base coordBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.Soak == nil {
		t.Fatal("baseline has no soak record")
	}
	if base.Soak.Arrivals == 0 || base.Soak.Completed == 0 {
		t.Errorf("soak saw no traffic: %+v", base.Soak)
	}
	if base.Soak.Recoveries < 1 {
		t.Errorf("the flapped replica never recovered: %+v\nstderr:\n%s", base.Soak, errb.String())
	}
	if base.Soak.DownSeconds <= 0 {
		t.Errorf("down time not recorded: %+v", base.Soak)
	}
	if base.Soak.LatencyP50Ms <= 0 || base.Soak.LatencyP99Ms < base.Soak.LatencyP50Ms {
		t.Errorf("latency percentiles out of shape: %+v", base.Soak)
	}
	if flappy.served.Load() == 0 {
		t.Error("the flapped replica never served a cell")
	}
	// The open loop must ride through the outage: the survivor absorbs
	// re-dispatched cells, so arrivals overwhelmingly complete.
	if base.Soak.Failed > base.Soak.Arrivals/2 {
		t.Errorf("too many failed arrivals for a one-replica outage: %+v", base.Soak)
	}
}
