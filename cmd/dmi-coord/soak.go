// The sustained-load soak harness: dmi-coord -soak drives the fleet with an
// open-loop arrival process instead of one grid pass. Arrivals fire on a
// fixed-rate clock regardless of completions (the load does not back off
// when the fleet struggles — that is the point: an open loop exposes
// queueing and recovery behavior a closed loop hides), each arrival
// dispatches the next grid cell in rotation, and individual failures are
// data points rather than aborts. The output is the recovery path's
// regression record: latency percentiles, failure counts, and the fleet's
// recovery/down totals, written into the -json baseline.
package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/taskpack"
)

// soakStats is the machine-readable record of one soak run, embedded in
// coordBaseline (BENCH_coord.json) so CI can gate on recoveries and track
// latency percentiles per commit.
type soakStats struct {
	DurationSeconds  float64 `json:"duration_seconds"`
	TargetRate       float64 `json:"target_rate"`
	Arrivals         int     `json:"arrivals"`
	Completed        int     `json:"completed"`
	Failed           int     `json:"failed"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	LatencyP50Ms     float64 `json:"latency_p50_ms"`
	LatencyP90Ms     float64 `json:"latency_p90_ms"`
	LatencyP99Ms     float64 `json:"latency_p99_ms"`
	LatencyMaxMs     float64 `json:"latency_max_ms"`
	Recoveries       int     `json:"recoveries"`
	DownSeconds      float64 `json:"down_seconds"`
}

// runSoakMode is the -soak top half: drive the load, print the telemetry,
// write the baseline.
func runSoakMode(ctx context.Context, rd *bench.RemoteDispatcher, reg *taskpack.Registry, duration time.Duration, rate float64, runs, inflight, batch int, jsonOut string, stderr io.Writer) error {
	fmt.Fprintf(stderr, "dmi-coord: soaking for %s at %.1f cells/s (open loop, %d runs per cell) across %d replicas…\n",
		duration, rate, runs, len(rd.Live()))
	ss, err := runSoak(ctx, rd, reg, duration, rate, runs)
	if err != nil {
		return fmt.Errorf("dmi-coord: %w", err)
	}
	fmt.Fprintf(stderr, "dmi-coord: soak done — %d arrivals, %d completed, %d failed in %.1fs (%.1f cells/s); latency p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms; %d recoveries, %.1fs down\n",
		ss.Arrivals, ss.Completed, ss.Failed, ss.DurationSeconds, ss.ThroughputPerSec,
		ss.LatencyP50Ms, ss.LatencyP90Ms, ss.LatencyP99Ms, ss.LatencyMaxMs, ss.Recoveries, ss.DownSeconds)
	writeReplicaLines(stderr, rd)
	if jsonOut != "" {
		if err := writeBaseline(jsonOut, rd, runs, inflight, batch, ss.Completed, duration, 0, ss); err != nil {
			return fmt.Errorf("dmi-coord: baseline: %w", err)
		}
		fmt.Fprintf(stderr, "dmi-coord: baseline written to %s\n", jsonOut)
	}
	return nil
}

// runSoak drives the open-loop arrival process: one cell dispatched every
// 1/rate seconds for the duration, cycling through the grid in canonical
// order. Dispatch failures (e.g. every replica down at once) count as
// failed arrivals and the load keeps coming — a soak's job is to measure
// the outage and the recovery, not to stop at the first one. Cancellation
// (^C) ends the soak early and is returned.
func runSoak(ctx context.Context, rd *bench.RemoteDispatcher, reg *taskpack.Registry, duration time.Duration, rate float64, runs int) (*soakStats, error) {
	cells := bench.GridCellsIn(reg, runs)
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		completed int
		failed    int
	)
	var wg sync.WaitGroup
	arrivals := 0
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	deadline := time.NewTimer(duration)
	defer deadline.Stop()
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-tick.C:
			cell := cells[arrivals%len(cells)]
			arrivals++
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				_, err := rd.Dispatch(ctx, cell)
				latency := time.Since(t0)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					failed++
					return
				}
				completed++
				latencies = append(latencies, latency)
			}()
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ss := &soakStats{
		DurationSeconds: elapsed.Seconds(),
		TargetRate:      rate,
		Arrivals:        arrivals,
		Completed:       completed,
		Failed:          failed,
		LatencyP50Ms:    percentileMs(latencies, 50),
		LatencyP90Ms:    percentileMs(latencies, 90),
		LatencyP99Ms:    percentileMs(latencies, 99),
	}
	if n := len(latencies); n > 0 {
		ss.LatencyMaxMs = float64(latencies[n-1]) / float64(time.Millisecond)
	}
	if ss.DurationSeconds > 0 {
		ss.ThroughputPerSec = float64(completed) / ss.DurationSeconds
	}
	for _, rs := range rd.Stats() {
		ss.Recoveries += rs.Recoveries
		ss.DownSeconds += rs.DownSeconds
	}
	return ss, nil
}

// percentileMs is the nearest-rank percentile of a sorted latency slice, in
// milliseconds. Nearest-rank (no interpolation) so every reported figure is
// a latency that actually happened.
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1]) / float64(time.Millisecond)
}
