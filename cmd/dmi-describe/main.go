// Command dmi-describe serializes an application's navigation topology in
// the LLM-facing textual format (paper §3.3, §4.2) and reports token costs
// (§5.4).
//
// Usage:
//
//	dmi-describe -app Word [-full] [-expand <node-id>] [-tokens]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/appkit"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/office/excel"
	"repro/internal/office/slides"
	"repro/internal/office/word"
	"repro/internal/ung"
)

func main() {
	app := flag.String("app", "Word", "application (Word, Excel, PowerPoint)")
	full := flag.Bool("full", false, "serialize the complete forest instead of the core topology")
	expand := flag.Int("expand", -1, "further_query: print the full substructure beneath this node id")
	tokens := flag.Bool("tokens", false, "print token accounting only")
	flag.Parse()

	builders := map[string]func() *appkit.App{
		"Word":       func() *appkit.App { return word.New().App },
		"Excel":      func() *appkit.App { return excel.New().App },
		"PowerPoint": func() *appkit.App { return slides.New(12).App },
	}
	build, ok := builders[*app]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(1)
	}
	g, _, err := ung.Rip(build(), ung.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, _, err := forest.Transform(g, forest.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m := describe.NewModel(f)

	if *expand >= 0 {
		out, err := m.SerializeSubtree(*expand)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(out)
		return
	}

	core := m.Serialize(describe.CoreOptions())
	fullText := m.Serialize(describe.FullOptions())
	if *tokens {
		cc, ct := describe.ControlsIn(core), describe.Tokens(core)
		fc, ft := describe.ControlsIn(fullText), describe.Tokens(fullText)
		fmt.Printf("%s core topology: %d controls, %d tokens (%.1f tokens/control)\n",
			*app, cc, ct, float64(ct)/float64(cc))
		fmt.Printf("%s full topology: %d controls, %d tokens (%.1f tokens/control)\n",
			*app, fc, ft, float64(ft)/float64(fc))
		return
	}
	if *full {
		fmt.Println(fullText)
		return
	}
	fmt.Println(core)
}
