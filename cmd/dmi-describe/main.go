// Command dmi-describe serializes an application's navigation topology in
// the LLM-facing textual format (paper §3.3, §4.2) and reports token costs
// (§5.4).
//
// Usage:
//
//	dmi-describe -app Word [-full] [-expand <node-id>] [-tokens]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/agent"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/ung"
)

// errUsage marks a flag-parse failure the FlagSet has already reported to
// stderr; main must not print it again.
var errUsage = errors.New("invalid usage")

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the CLI against the given argument list and streams; main is
// a thin exit-code shim around it so tests can drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dmi-describe", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "Word", "application (Word, Excel, PowerPoint, Settings, Files)")
	full := fs.Bool("full", false, "serialize the complete forest instead of the core topology")
	expand := fs.Int("expand", -1, "further_query: print the full substructure beneath this node id")
	tokens := fs.Bool("tokens", false, "print token accounting only")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage was printed, not an error
		}
		return errUsage
	}

	build, ok := agent.Factories()[*app]
	if !ok {
		return fmt.Errorf("unknown app %q", *app)
	}
	g, _, err := ung.Rip(build(), ung.Config{})
	if err != nil {
		return err
	}
	f, _, err := forest.Transform(g, forest.Options{})
	if err != nil {
		return err
	}
	m := describe.NewModel(f)

	if *expand >= 0 {
		out, err := m.SerializeSubtree(*expand)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, out)
		return nil
	}

	core := m.Serialize(describe.CoreOptions())
	fullText := m.Serialize(describe.FullOptions())
	if *tokens {
		cc, ct := describe.ControlsIn(core), describe.Tokens(core)
		fc, ft := describe.ControlsIn(fullText), describe.Tokens(fullText)
		fmt.Fprintf(stdout, "%s core topology: %d controls, %d tokens (%.1f tokens/control)\n",
			*app, cc, ct, float64(ct)/float64(cc))
		fmt.Fprintf(stdout, "%s full topology: %d controls, %d tokens (%.1f tokens/control)\n",
			*app, fc, ft, float64(ft)/float64(fc))
		return nil
	}
	if *full {
		fmt.Fprintln(stdout, fullText)
		return nil
	}
	fmt.Fprintln(stdout, core)
	return nil
}
