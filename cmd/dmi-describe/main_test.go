package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestUnknownAppIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-app", "Nope"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "Nope") {
		t.Fatalf("expected unknown-app error, got %v", err)
	}
}

func TestBadFlagIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-expand", "x"}, &out, &errb); err == nil {
		t.Fatal("expected a flag-parse error")
	}
}

func TestTokensAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-app", "Files", "-tokens"}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"Files core topology:", "Files full topology:", "tokens/control"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestCoreSerializationMentionsKeyControls(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-app", "Settings"}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"Night light", "Network reset", "Accent color"} {
		if !strings.Contains(got, want) {
			t.Errorf("core topology missing %q", want)
		}
	}
}

func TestExpandPrintsSubtree(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	var out, errb bytes.Buffer
	// Node 0 is the topology root; its subtree is the whole main tree.
	if err := run([]string{"-app", "Settings", "-expand", "0"}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Len() == 0 {
		t.Fatal("expand printed nothing")
	}
}

func TestHelpFlagIsNotAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h should print usage and succeed, got %v", err)
	}
	if !strings.Contains(errb.String(), "Usage") {
		t.Errorf("usage text missing from stderr:\n%s", errb.String())
	}
}
