// Command dmi-bench runs the online evaluation (paper §5.3–§5.6): the
// 27-task benchmark across the interface × model matrix, regenerating
// Table 3, Figure 5a/5b, Figure 6, the one-shot statistic, and the token
// accounting.
//
// Usage:
//
//	dmi-bench [-runs 3] [-parallel N] [-table3] [-fig5a] [-fig5b] [-fig6] [-oneshot] [-tokens]
//
// With no section flags, everything is printed. -parallel serves the
// (setting, task, run) grid from a worker pool sharing the warm models; the
// report is byte-identical to the sequential run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/agent"
	"repro/internal/bench"
)

func main() {
	runs := flag.Int("runs", 3, "seeded repetitions per task (paper: 3)")
	table3 := flag.Bool("table3", false, "print Table 3")
	fig5a := flag.Bool("fig5a", false, "print Figure 5a")
	fig5b := flag.Bool("fig5b", false, "print Figure 5b")
	fig6 := flag.Bool("fig6", false, "print Figure 6")
	oneshot := flag.Bool("oneshot", false, "print the §5.3 one-shot statistic")
	tokens := flag.Bool("tokens", false, "print §5.4 token accounting")
	workers := flag.Int("workers", 0, "rip worker-pool size for the offline phase (0 = auto)")
	parallel := flag.Int("parallel", 1, "online-phase worker-pool size (1 = sequential, 0 = GOMAXPROCS)")
	flag.Parse()

	all := !*table3 && !*fig5a && !*fig5b && !*fig6 && !*oneshot && !*tokens

	fmt.Fprintln(os.Stderr, "offline phase: modeling Word, Excel, PowerPoint…")
	models, err := agent.BuildModelsParallel(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modeling failed:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "online phase: %d settings × 27 tasks × %d runs (parallel=%d)…\n",
		len(bench.Matrix()), *runs, *parallel)
	rep := bench.RunParallel(models, *runs, *parallel)

	w := os.Stdout
	if all || *table3 {
		rep.WriteTable3(w)
		fmt.Fprintln(w)
	}
	if all || *fig5a || *fig5b {
		rep.WriteFig5(w)
	}
	if all || *fig6 {
		rep.WriteFig6(w)
		fmt.Fprintln(w)
	}
	if all || *oneshot {
		rep.WriteOneShot(w)
		fmt.Fprintln(w)
	}
	if all || *tokens {
		rep.WriteTokens(w, models)
	}
}
