// Command dmi-bench runs the online evaluation (paper §5.3–§5.6): the
// 39-task benchmark across the interface × model matrix, regenerating
// Table 3, Figure 5a/5b, Figure 6, the one-shot statistic, and the token
// accounting.
//
// Usage:
//
//	dmi-bench [-runs 3] [-parallel N] [-table3] [-fig5a] [-fig5b] [-fig6] [-oneshot] [-tokens]
//
// With no section flags, everything is printed. -parallel serves the
// (setting, task, run) grid from a worker pool sharing the warm models; the
// report is byte-identical to the sequential run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/agent"
	"repro/internal/bench"
	"repro/internal/osworld"
)

// errUsage marks a flag-parse failure the FlagSet has already reported to
// stderr; main must not print it again.
var errUsage = errors.New("invalid usage")

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the CLI against the given argument list and streams; main is
// a thin exit-code shim around it so tests can drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dmi-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runs := fs.Int("runs", 3, "seeded repetitions per task (paper: 3)")
	table3 := fs.Bool("table3", false, "print Table 3")
	fig5a := fs.Bool("fig5a", false, "print Figure 5a")
	fig5b := fs.Bool("fig5b", false, "print Figure 5b")
	fig6 := fs.Bool("fig6", false, "print Figure 6")
	oneshot := fs.Bool("oneshot", false, "print the §5.3 one-shot statistic")
	tokens := fs.Bool("tokens", false, "print §5.4 token accounting")
	workers := fs.Int("workers", 0, "rip worker-pool size for the offline phase (0 = auto)")
	parallel := fs.Int("parallel", 1, "online-phase worker-pool size (1 = sequential, 0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage was printed, not an error
		}
		return errUsage
	}

	all := !*table3 && !*fig5a && !*fig5b && !*fig6 && !*oneshot && !*tokens

	fmt.Fprintf(stderr, "offline phase: modeling the %d-app catalog…\n", len(agent.Factories()))
	models, err := agent.BuildModelsParallel(*workers)
	if err != nil {
		return fmt.Errorf("modeling failed: %w", err)
	}
	fmt.Fprintf(stderr, "online phase: %d settings × %d tasks × %d runs (parallel=%d)…\n",
		len(bench.Matrix()), len(osworld.All()), *runs, *parallel)
	rep := bench.RunParallel(models, *runs, *parallel)

	w := stdout
	if all || *table3 {
		rep.WriteTable3(w)
		fmt.Fprintln(w)
	}
	if all || *fig5a || *fig5b {
		rep.WriteFig5(w)
	}
	if all || *fig6 {
		rep.WriteFig6(w)
		fmt.Fprintln(w)
	}
	if all || *oneshot {
		rep.WriteOneShot(w)
		fmt.Fprintln(w)
	}
	if all || *tokens {
		rep.WriteTokens(w, models)
	}
	return nil
}
