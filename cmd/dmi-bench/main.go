// Command dmi-bench runs the online evaluation (paper §5.3–§5.6): the
// 39-task benchmark across the interface × model matrix, regenerating
// Table 3, Figure 5a/5b, Figure 6, the one-shot statistic, and the token
// accounting.
//
// Usage:
//
//	dmi-bench [-taskpack FILE] [-runs 3] [-parallel N] [-json FILE] [-table3] [-fig5a] [-fig5b] [-fig6] [-oneshot] [-tokens]
//	dmi-bench [-cpuprofile FILE] [-memprofile FILE] [-hotpath FILE] ...
//
// With no section flags, everything is printed. -taskpack evaluates a task
// pack loaded from JSON (see internal/taskpack) instead of the compiled-in
// osworld-w grid; the built-in grid loaded from its own exported pack
// produces a byte-identical report. -parallel serves the
// (setting, task, run) grid from a worker pool sharing the warm models; the
// report is byte-identical to the sequential run. -json additionally writes
// a machine-readable throughput baseline (sessions/sec, warm-hit ratio) for
// CI perf tracking.
//
// The profiling flags drive the hot-path work: -cpuprofile/-memprofile write
// runtime/pprof profiles of the whole run (the heap profile is taken after a
// final GC, so it shows retained memory, not transient garbage), and
// -hotpath writes the snapshot-codec size record — per-app and total graph
// bytes under the binary codec versus JSON — that CI composes into
// BENCH_delta.json and gates on.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"repro/internal/agent"
	"repro/internal/bench"
	"repro/internal/modelstore"
	"repro/internal/taskpack"
	"repro/internal/ung"
)

// errUsage marks a flag-parse failure the FlagSet has already reported to
// stderr; main must not print it again.
var errUsage = errors.New("invalid usage")

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the CLI against the given argument list and streams; main is
// a thin exit-code shim around it so tests can drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dmi-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	packFile := fs.String("taskpack", "", "task pack JSON to evaluate (default: the built-in osworld-w grid)")
	runs := fs.Int("runs", 3, "seeded repetitions per task (paper: 3)")
	table3 := fs.Bool("table3", false, "print Table 3")
	fig5a := fs.Bool("fig5a", false, "print Figure 5a")
	fig5b := fs.Bool("fig5b", false, "print Figure 5b")
	fig6 := fs.Bool("fig6", false, "print Figure 6")
	oneshot := fs.Bool("oneshot", false, "print the §5.3 one-shot statistic")
	tokens := fs.Bool("tokens", false, "print §5.4 token accounting")
	workers := fs.Int("workers", 0, "rip worker-pool size for the offline phase (0 = auto)")
	parallel := fs.Int("parallel", 1, "online-phase worker-pool size (1 = sequential, 0 = GOMAXPROCS)")
	jsonOut := fs.String("json", "", "write a machine-readable baseline (sessions/sec, warm-hit ratio) to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a runtime/pprof CPU profile of the whole run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (after a final GC) to this file")
	hotpath := fs.String("hotpath", "", "write the snapshot-codec size record (binary vs JSON bytes per app) to this JSON file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage was printed, not an error
		}
		return errUsage
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("dmi-bench: cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("dmi-bench: cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	all := !*table3 && !*fig5a && !*fig5b && !*fig6 && !*oneshot && !*tokens

	reg, err := loadRegistry(*packFile)
	if err != nil {
		return fmt.Errorf("dmi-bench: %w", err)
	}

	fmt.Fprintf(stderr, "offline phase: modeling the %d-app catalog…\n", len(agent.Factories()))
	models, err := agent.BuildModelsParallel(*workers)
	if err != nil {
		return fmt.Errorf("modeling failed: %w", err)
	}
	fmt.Fprintf(stderr, "online phase: %d settings × %d tasks × %d runs (parallel=%d)…\n",
		len(bench.Matrix()), reg.Len(), *runs, *parallel)
	start := time.Now()
	// The grid goes through the same Dispatcher seam the distributed
	// coordinator uses, bound to the in-process LocalDispatcher — so the
	// single-host path continuously proves the seam behavior-preserving
	// (the report is byte-identical to the sequential run at any
	// concurrency).
	rep, err := bench.RunDispatchedIn(context.Background(), reg, bench.NewLocalDispatcherIn(reg, models, 1), *runs, *parallel)
	if err != nil {
		return fmt.Errorf("online phase: %w", err)
	}
	elapsed := time.Since(start)

	if *jsonOut != "" {
		if err := writeBaseline(*jsonOut, reg, *runs, *parallel, elapsed); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		fmt.Fprintf(stderr, "baseline written to %s\n", *jsonOut)
	}
	if *hotpath != "" {
		if err := writeHotpath(*hotpath); err != nil {
			return fmt.Errorf("hotpath: %w", err)
		}
		fmt.Fprintf(stderr, "hot-path size record written to %s\n", *hotpath)
	}

	w := stdout
	if all || *table3 {
		rep.WriteTable3(w)
		fmt.Fprintln(w)
	}
	if all || *fig5a || *fig5b {
		rep.WriteFig5(w)
	}
	if all || *fig6 {
		rep.WriteFig6(w)
		fmt.Fprintln(w)
	}
	if all || *oneshot {
		rep.WriteOneShot(w)
		fmt.Fprintln(w)
	}
	if all || *tokens {
		rep.WriteTokens(w, models)
	}
	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			return fmt.Errorf("dmi-bench: memprofile: %w", err)
		}
	}
	return nil
}

// writeHeapProfile snapshots the heap after a final GC, so the profile shows
// what the run retains (the warm models, the store's resident set), not the
// transient garbage of the last sessions.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// hotpathApp is one application's share of the snapshot-codec size record.
type hotpathApp struct {
	App         string `json:"app"`
	Nodes       int    `json:"nodes"`
	BinaryBytes int    `json:"binary_bytes"`
	JSONBytes   int    `json:"json_bytes"`
}

// hotpathRecord is the -hotpath output: every catalog graph encoded under
// both snapshot codecs, with the totals CI's bench-delta gate compares
// (binary must stay well under JSON — see .github/workflows/ci.yml).
type hotpathRecord struct {
	Apps        []hotpathApp `json:"apps"`
	BinaryBytes int64        `json:"binary_bytes"`
	JSONBytes   int64        `json:"json_bytes"`
	BinaryRatio float64      `json:"binary_ratio"`
}

// writeHotpath encodes every catalog application's ripped graph under both
// snapshot codecs and records the sizes. The graphs come from the shared
// store the online phase already warmed, so this costs two encodes per app,
// never a re-rip.
func writeHotpath(path string) error {
	factories := agent.Factories()
	apps := make([]string, 0, len(factories))
	//dmi:orderinvariant collected app names are sorted before use
	for app := range factories {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	rec := hotpathRecord{Apps: make([]hotpathApp, 0, len(apps))}
	for _, app := range apps {
		b, err := agent.SharedStore().Build(app, factories[app], modelstore.Options{})
		if err != nil {
			return fmt.Errorf("%s: %w", app, err)
		}
		bin, err := ung.EncodeBinary(b.Graph)
		if err != nil {
			return fmt.Errorf("%s: %w", app, err)
		}
		js, err := ung.Encode(b.Graph)
		if err != nil {
			return fmt.Errorf("%s: %w", app, err)
		}
		rec.Apps = append(rec.Apps, hotpathApp{
			App: app, Nodes: len(b.Graph.Order), BinaryBytes: len(bin), JSONBytes: len(js),
		})
		rec.BinaryBytes += int64(len(bin))
		rec.JSONBytes += int64(len(js))
	}
	if rec.JSONBytes > 0 {
		rec.BinaryRatio = float64(rec.BinaryBytes) / float64(rec.JSONBytes)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// baseline is the machine-readable perf record CI uploads per run
// (BENCH_serve.json): online-phase throughput plus the shared model store's
// warm-serving counters. Wall-clock fields vary per host; the structure is
// what downstream trend tooling keys on.
type baseline struct {
	Settings          int              `json:"settings"`
	Tasks             int              `json:"tasks"`
	Runs              int              `json:"runs"`
	Parallel          int              `json:"parallel"`
	Sessions          int              `json:"sessions"`
	ElapsedSeconds    float64          `json:"elapsed_seconds"`
	SessionsPerSecond float64          `json:"sessions_per_second"`
	Store             modelstore.Stats `json:"store"`
	WarmHitRatio      float64          `json:"warm_hit_ratio"`
}

// loadRegistry resolves the -taskpack flag to a task registry: the built-in
// grid when the flag is empty, otherwise a validated pack loaded from the
// file. Reading the file here keeps internal/taskpack pure ([]byte in, never
// the filesystem).
func loadRegistry(path string) (*taskpack.Registry, error) {
	if path == "" {
		return taskpack.Builtin(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	reg, err := taskpack.Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reg, nil
}

func writeBaseline(path string, reg *taskpack.Registry, runs, parallel int, elapsed time.Duration) error {
	settings, tasks := len(bench.Matrix()), reg.Len()
	// Account one warm-model fetch per session start — exactly the store
	// traffic the serving daemon generates per POST /session. The offline
	// builds are the only misses, so the warm-hit ratio measures the
	// serving property itself (one modeling pass amortized over the whole
	// grid) instead of sitting at a constant.
	for i := 0; i < settings; i++ {
		for _, task := range reg.Tasks() {
			for r := 0; r < runs; r++ {
				if _, err := agent.ModelsFor(agent.SharedStore(), task.App, 0); err != nil {
					return err
				}
			}
		}
	}
	b := baseline{
		Settings: settings,
		Tasks:    tasks,
		Runs:     runs,
		Parallel: parallel,
		Sessions: settings * tasks * runs,
		Store:    agent.StoreStats(),
	}
	b.ElapsedSeconds = elapsed.Seconds()
	if b.ElapsedSeconds > 0 {
		b.SessionsPerSecond = float64(b.Sessions) / b.ElapsedSeconds
	}
	if lookups := b.Store.Hits + b.Store.Misses; lookups > 0 {
		b.WarmHitRatio = float64(b.Store.Hits) / float64(lookups)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
