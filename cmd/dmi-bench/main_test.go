package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/osworld"
)

func TestBadFlagIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-runs", "three"}, &out, &errb); err == nil {
		t.Fatal("expected a flag-parse error")
	}
}

func TestTable3Section(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-runs", "1", "-table3"}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "Table 3") {
		t.Fatalf("missing Table 3 header:\n%s", got)
	}
	for _, set := range bench.Matrix() {
		if !strings.Contains(got, set.Label) {
			t.Errorf("Table 3 missing row %q", set.Label)
		}
	}
	// Section flags are exclusive: no other sections in the output.
	for _, absent := range []string{"Figure 5a", "Figure 6", "Token overhead"} {
		if strings.Contains(got, absent) {
			t.Errorf("-table3 output unexpectedly contains %q", absent)
		}
	}
	progress := errb.String()
	want := fmt.Sprintf("%d tasks", len(osworld.All()))
	if !strings.Contains(progress, want) {
		t.Errorf("stderr progress should mention %q:\n%s", want, progress)
	}
}

// TestParallelFlagMatchesSequential drives the CLI end to end at two pool
// sizes: the rendered report must be byte-identical (the RunParallel
// contract surfaced at the binary's boundary).
func TestParallelFlagMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	var seq, par, errb bytes.Buffer
	if err := run([]string{"-runs", "1"}, &seq, &errb); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if err := run([]string{"-runs", "1", "-parallel", "8"}, &par, &errb); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if seq.String() != par.String() {
		t.Fatal("-parallel 8 report differs from the sequential report")
	}
	for _, want := range []string{"Table 3", "Figure 5a", "Figure 5b", "Figure 6",
		"One-shot", "Token overhead", "Settings", "Files"} {
		if !strings.Contains(seq.String(), want) {
			t.Errorf("full report missing %q", want)
		}
	}
}

func TestHelpFlagIsNotAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h should print usage and succeed, got %v", err)
	}
	if !strings.Contains(errb.String(), "Usage") {
		t.Errorf("usage text missing from stderr:\n%s", errb.String())
	}
}
