package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/bench"
	"repro/internal/osworld"
)

func TestBadFlagIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-runs", "three"}, &out, &errb); err == nil {
		t.Fatal("expected a flag-parse error")
	}
}

func TestTable3Section(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-runs", "1", "-table3"}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "Table 3") {
		t.Fatalf("missing Table 3 header:\n%s", got)
	}
	for _, set := range bench.Matrix() {
		if !strings.Contains(got, set.Label) {
			t.Errorf("Table 3 missing row %q", set.Label)
		}
	}
	// Section flags are exclusive: no other sections in the output.
	for _, absent := range []string{"Figure 5a", "Figure 6", "Token overhead"} {
		if strings.Contains(got, absent) {
			t.Errorf("-table3 output unexpectedly contains %q", absent)
		}
	}
	progress := errb.String()
	want := fmt.Sprintf("%d tasks", len(osworld.All()))
	if !strings.Contains(progress, want) {
		t.Errorf("stderr progress should mention %q:\n%s", want, progress)
	}
}

// TestParallelFlagMatchesSequential drives the CLI end to end at two pool
// sizes: the rendered report must be byte-identical (the RunParallel
// contract surfaced at the binary's boundary).
func TestParallelFlagMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	var seq, par, errb bytes.Buffer
	if err := run([]string{"-runs", "1"}, &seq, &errb); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if err := run([]string{"-runs", "1", "-parallel", "8"}, &par, &errb); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if seq.String() != par.String() {
		t.Fatal("-parallel 8 report differs from the sequential report")
	}
	for _, want := range []string{"Table 3", "Figure 5a", "Figure 5b", "Figure 6",
		"One-shot", "Token overhead", "Settings", "Files"} {
		if !strings.Contains(seq.String(), want) {
			t.Errorf("full report missing %q", want)
		}
	}
}

func TestHelpFlagIsNotAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h should print usage and succeed, got %v", err)
	}
	if !strings.Contains(errb.String(), "Usage") {
		t.Errorf("usage text missing from stderr:\n%s", errb.String())
	}
}

// TestJSONBaseline: -json writes the machine-readable perf record CI
// uploads (BENCH_serve.json) — session counts from the grid shape, positive
// throughput, and store counters with a sane warm-hit ratio.
func TestJSONBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var out, errb bytes.Buffer
	if err := run([]string{"-runs", "1", "-parallel", "4", "-table3", "-json", path}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b struct {
		Settings          int     `json:"settings"`
		Tasks             int     `json:"tasks"`
		Sessions          int     `json:"sessions"`
		SessionsPerSecond float64 `json:"sessions_per_second"`
		WarmHitRatio      float64 `json:"warm_hit_ratio"`
		Store             struct {
			Misses         int64 `json:"misses"`
			ResidentBytes  int64 `json:"resident_bytes"`
			ResidentModels int   `json:"resident_models"`
		} `json:"store"`
	}
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("baseline is not valid JSON: %v\n%s", err, data)
	}
	wantSessions := len(bench.Matrix()) * len(osworld.All())
	if b.Sessions != wantSessions || b.Settings != len(bench.Matrix()) || b.Tasks != len(osworld.All()) {
		t.Errorf("grid shape wrong: %+v (want %d sessions)", b, wantSessions)
	}
	if b.SessionsPerSecond <= 0 {
		t.Errorf("throughput %v not positive", b.SessionsPerSecond)
	}
	// The baseline accounts one store fetch per session start over 312
	// sessions against at most a handful of offline-build misses, so the
	// ratio must reflect warm serving, not sit at a degenerate 0.
	if b.WarmHitRatio < 0.9 || b.WarmHitRatio > 1 {
		t.Errorf("warm-hit ratio %v outside [0.9,1]", b.WarmHitRatio)
	}
	// The offline phase ran through the shared store: the whole catalog
	// must be resident and at least one build must have been a miss.
	if b.Store.Misses < 1 || b.Store.ResidentModels < 1 || b.Store.ResidentBytes <= 0 {
		t.Errorf("store counters implausible: %+v", b.Store)
	}
}

// TestHotpathRecord: -hotpath writes the snapshot-codec size record CI's
// bench-delta gate consumes — one entry per catalog app, both codecs
// measured, and the binary total well under the JSON total (the ≤0.7× gate
// in ci.yml, asserted here at the source).
func TestHotpathRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	path := filepath.Join(t.TempDir(), "BENCH_hotpath.json")
	var out, errb bytes.Buffer
	if err := run([]string{"-runs", "1", "-table3", "-hotpath", path}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(errb.String(), "hot-path size record written") {
		t.Errorf("stderr never confirmed the hotpath record:\n%s", errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec hotpathRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("hotpath record is not valid JSON: %v\n%s", err, data)
	}
	if len(rec.Apps) != len(agent.Factories()) {
		t.Errorf("record covers %d apps, want the full %d-app catalog", len(rec.Apps), len(agent.Factories()))
	}
	for _, app := range rec.Apps {
		if app.Nodes <= 0 || app.BinaryBytes <= 0 || app.JSONBytes <= 0 {
			t.Errorf("degenerate per-app entry: %+v", app)
		}
		if app.BinaryBytes >= app.JSONBytes {
			t.Errorf("%s: binary (%d B) not smaller than JSON (%d B)", app.App, app.BinaryBytes, app.JSONBytes)
		}
	}
	if rec.BinaryBytes <= 0 || rec.JSONBytes <= 0 {
		t.Fatalf("degenerate totals: %+v", rec)
	}
	if rec.BinaryRatio > 0.7 {
		t.Errorf("binary/JSON ratio %.3f exceeds the 0.7 CI gate", rec.BinaryRatio)
	}
}

// TestProfileFlags: -cpuprofile and -memprofile produce non-empty pprof
// files without disturbing the run.
func TestProfileFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	var out, errb bytes.Buffer
	if err := run([]string{"-runs", "1", "-table3", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Table 3") {
		t.Error("profiled run lost its report")
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile missing: %v", err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", filepath.Base(path))
		}
	}
}
