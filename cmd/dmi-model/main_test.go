package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownAppIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-app", "Sketchpad"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "Sketchpad") {
		t.Fatalf("expected unknown-app error, got %v", err)
	}
}

func TestBadFlagIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-workers", "many"}, &out, &errb); err == nil {
		t.Fatal("expected a flag-parse error")
	}
}

func TestModelSingleAppTable(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-app", "Settings", "-workers", "2"}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"app", "nodes", "core-tokens", "blocklist",
		"Settings", "rip(2 workers)", "Figure 4"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestSnapshotReuseAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	dir := t.TempDir()
	var cold, warm, errb bytes.Buffer
	if err := run([]string{"-app", "Files", "-snapshot", dir}, &cold, &errb); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if !strings.Contains(cold.String(), "rip(4 workers)") {
		t.Fatalf("cold run should rip:\n%s", cold.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no snapshot written to %s (%v)", dir, err)
	}
	if filepath.Ext(entries[0].Name()) != ".ungb" {
		t.Errorf("snapshot %q is not the binary default", entries[0].Name())
	}
	if err := run([]string{"-app", "Files", "-snapshot", dir}, &warm, &errb); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !strings.Contains(warm.String(), "snapshot") || !strings.Contains(warm.String(), "0s") {
		t.Fatalf("warm run should rebuild from the snapshot with zero rip time:\n%s", warm.String())
	}
}

func TestSnapshotFormatJSONDebug(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	dir := t.TempDir()
	var cold, warm, errb bytes.Buffer
	if err := run([]string{"-app", "Files", "-snapshot", dir, "-snapshot-format", "json"}, &cold, &errb); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no snapshot written to %s (%v)", dir, err)
	}
	if filepath.Ext(entries[0].Name()) != ".json" {
		t.Errorf("snapshot %q is not JSON", entries[0].Name())
	}
	// A binary-default run must reuse the JSON snapshot: the loader falls
	// back to the other format's file instead of re-ripping.
	if err := run([]string{"-app", "Files", "-snapshot", dir}, &warm, &errb); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !strings.Contains(warm.String(), "snapshot") {
		t.Fatalf("binary-default run should reuse the JSON snapshot:\n%s", warm.String())
	}
}

func TestBadSnapshotFormatIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-snapshot-format", "yaml"}, &out, &errb); err == nil {
		t.Fatal("expected a snapshot-format error")
	}
	if !strings.Contains(errb.String(), "yaml") {
		t.Errorf("error should name the bad format:\n%s", errb.String())
	}
}

func TestHelpFlagIsNotAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h should print usage and succeed, got %v", err)
	}
	if !strings.Contains(errb.String(), "Usage") {
		t.Errorf("usage text missing from stderr:\n%s", errb.String())
	}
}
