package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/appkit"
	"repro/internal/serveproto"
	"repro/internal/ung"
)

func TestUnknownAppIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-app", "Sketchpad"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "Sketchpad") {
		t.Fatalf("expected unknown-app error, got %v", err)
	}
}

func TestBadFlagIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-workers", "many"}, &out, &errb); err == nil {
		t.Fatal("expected a flag-parse error")
	}
}

func TestModelSingleAppTable(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-app", "Settings", "-workers", "2"}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"app", "nodes", "core-tokens", "blocklist",
		"Settings", "rip(2 workers)", "Figure 4"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestSnapshotReuseAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	dir := t.TempDir()
	var cold, warm, errb bytes.Buffer
	if err := run([]string{"-app", "Files", "-snapshot", dir}, &cold, &errb); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if !strings.Contains(cold.String(), "rip(4 workers)") {
		t.Fatalf("cold run should rip:\n%s", cold.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no snapshot written to %s (%v)", dir, err)
	}
	if filepath.Ext(entries[0].Name()) != ".ungb" {
		t.Errorf("snapshot %q is not the binary default", entries[0].Name())
	}
	if err := run([]string{"-app", "Files", "-snapshot", dir}, &warm, &errb); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !strings.Contains(warm.String(), "snapshot") || !strings.Contains(warm.String(), "0s") {
		t.Fatalf("warm run should rebuild from the snapshot with zero rip time:\n%s", warm.String())
	}
}

func TestSnapshotFormatJSONDebug(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	dir := t.TempDir()
	var cold, warm, errb bytes.Buffer
	if err := run([]string{"-app", "Files", "-snapshot", dir, "-snapshot-format", "json"}, &cold, &errb); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no snapshot written to %s (%v)", dir, err)
	}
	if filepath.Ext(entries[0].Name()) != ".json" {
		t.Errorf("snapshot %q is not JSON", entries[0].Name())
	}
	// A binary-default run must reuse the JSON snapshot: the loader falls
	// back to the other format's file instead of re-ripping.
	if err := run([]string{"-app", "Files", "-snapshot", dir}, &warm, &errb); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !strings.Contains(warm.String(), "snapshot") {
		t.Fatalf("binary-default run should reuse the JSON snapshot:\n%s", warm.String())
	}
}

func TestBadSnapshotFormatIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-snapshot-format", "yaml"}, &out, &errb); err == nil {
		t.Fatal("expected a snapshot-format error")
	}
	if !strings.Contains(errb.String(), "yaml") {
		t.Errorf("error should name the bad format:\n%s", errb.String())
	}
}

func TestHelpFlagIsNotAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h should print usage and succeed, got %v", err)
	}
	if !strings.Contains(errb.String(), "Usage") {
		t.Errorf("usage text missing from stderr:\n%s", errb.String())
	}
}

// ripServer is a minimal rip replica for the -replicas tests: /healthz
// reports ready on the v1 protocol and /v1/rip expands frames on real app
// instances — the same ung.ExpandFrame path the dmi-serve daemon runs.
type ripServer struct {
	mu    sync.Mutex
	insts map[string]*appkit.App
}

func (rs *ripServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serveproto.Health{OK: true, Apps: len(agent.AppNames()), Proto: serveproto.ProtoV1})
		return
	}
	if r.URL.Path != "/v1/rip" || r.Method != http.MethodPost {
		http.NotFound(w, r)
		return
	}
	body, _ := io.ReadAll(r.Body)
	req, err := serveproto.ParseRipRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.insts == nil {
		rs.insts = make(map[string]*appkit.App)
	}
	inst := rs.insts[req.App]
	if inst == nil {
		factory, ok := agent.Factories()[req.App]
		if !ok {
			http.Error(w, "unknown app", http.StatusNotFound)
			return
		}
		inst = factory()
		rs.insts[req.App] = inst
	}
	resp := serveproto.RipResponse{App: req.App, Context: req.Context}
	for _, f := range req.Frames {
		exp := serveproto.FromExpansion(ung.ExpandFrame(inst, req.Context, ung.Frame{ID: f.ID, Path: f.Path}))
		resp.Results = append(resp.Results, serveproto.RipResult{Status: http.StatusOK, Expansion: &exp})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// TestReplicasShardedSnapshotMatchesSequential models the same app through
// the in-process pool and through -replicas sharding, persisting both
// snapshots, and requires the files to be byte-identical — the CLI-level
// half of the distributed-rip determinism contract.
func TestReplicasShardedSnapshotMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	srv := httptest.NewServer(&ripServer{})
	defer srv.Close()

	seqDir, shardDir := t.TempDir(), t.TempDir()
	var out, errb bytes.Buffer
	if err := run([]string{"-app", "Settings", "-workers", "1", "-snapshot", seqDir}, &out, &errb); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	out.Reset()
	if err := run([]string{"-app", "Settings", "-replicas", srv.URL, "-snapshot", shardDir}, &out, &errb); err != nil {
		t.Fatalf("sharded run: %v\n%s", err, errb.String())
	}
	if !strings.Contains(out.String(), "rip(1 replicas)") {
		t.Errorf("sharded run should report its source:\n%s", out.String())
	}

	seqFiles, err := os.ReadDir(seqDir)
	if err != nil || len(seqFiles) != 1 {
		t.Fatalf("sequential snapshot dir: %v (%d files)", err, len(seqFiles))
	}
	shardFiles, err := os.ReadDir(shardDir)
	if err != nil || len(shardFiles) != 1 {
		t.Fatalf("sharded snapshot dir: %v (%d files)", err, len(shardFiles))
	}
	if seqFiles[0].Name() != shardFiles[0].Name() {
		t.Fatalf("snapshot names differ: %q vs %q", seqFiles[0].Name(), shardFiles[0].Name())
	}
	a, err := os.ReadFile(filepath.Join(seqDir, seqFiles[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(shardDir, shardFiles[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("sharded snapshot is not byte-identical to sequential: %d vs %d bytes", len(b), len(a))
	}
}

// TestReplicasNotReadyIsAnError pins the fleet wait: a replica that never
// reports healthy fails the run with an error naming it, instead of ripping
// against a dead fleet.
func TestReplicasNotReadyIsAnError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "prewarming", http.StatusInternalServerError)
	}))
	defer srv.Close()
	old := replicaWait
	replicaWait = 300 * time.Millisecond
	defer func() { replicaWait = old }()
	var out, errb bytes.Buffer
	err := run([]string{"-app", "Settings", "-replicas", srv.URL}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "not ready") {
		t.Fatalf("expected a not-ready error, got %v", err)
	}
}

// TestModelProfileAndJSONFlags: -cpuprofile/-memprofile produce non-empty
// pprof files and -json writes the modeling baseline record.
func TestModelProfileAndJSONFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	baseline := filepath.Join(dir, "rip.json")
	var out, errb bytes.Buffer
	if err := run([]string{"-app", "Settings", "-cpuprofile", cpu, "-memprofile", mem, "-json", baseline}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (%v)", p, err)
		}
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Records []ripRecord `json:"records"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("baseline does not parse: %v\n%s", err, data)
	}
	if len(doc.Records) != 1 || doc.Records[0].App != "Settings" {
		t.Fatalf("unexpected baseline records: %+v", doc.Records)
	}
	rec := doc.Records[0]
	if rec.Nodes == 0 || rec.Clicks == 0 || rec.WallSeconds <= 0 {
		t.Errorf("baseline record looks empty: %+v", rec)
	}
}
