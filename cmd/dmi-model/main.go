// Command dmi-model runs the offline phase (paper §3.2, §4.1, §5.2): it
// rips each simulated application into a UI Navigation Graph, transforms
// the graph into a path-unambiguous forest, and reports modeling cost,
// topology statistics, and the Figure 4 graph→tree→forest comparison.
//
// Modeling goes through the model store: -workers distributes the rip over
// a pool of throwaway instances (byte-identical result), and -snapshot
// persists the ripped graphs so later runs rebuild the models with zero rip
// clicks — compact binary by default, -snapshot-format json for the
// greppable debug form (either format loads either way).
//
// Usage:
//
//	dmi-model [-app Word|Excel|PowerPoint|Settings|Files|all] [-threshold 64]
//	          [-sweep] [-workers 4] [-snapshot DIR] [-snapshot-format binary|json]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"text/tabwriter"

	"repro/internal/agent"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/modelstore"
)

// errUsage marks a flag-parse failure the FlagSet has already reported to
// stderr; main must not print it again.
var errUsage = errors.New("invalid usage")

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the CLI against the given argument list and streams; main is
// a thin exit-code shim around it so tests can drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dmi-model", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "all", "application to model (Word, Excel, PowerPoint, Settings, Files, all)")
	threshold := fs.Int("threshold", 64, "clone-cost threshold for selective externalization")
	sweep := fs.Bool("sweep", false, "sweep externalization thresholds (design-choice ablation)")
	workers := fs.Int("workers", 4, "rip worker-pool size (1 = sequential)")
	snapshot := fs.String("snapshot", "", "directory for graph snapshots (reused across runs)")
	snapshotFormat := fs.String("snapshot-format", "binary", "snapshot encoding: binary (compact default) or json (debug)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage was printed, not an error
		}
		return errUsage
	}
	format, err := modelstore.ParseSnapshotFormat(*snapshotFormat)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return errUsage
	}

	names := agent.AppNames()
	if *app != "all" {
		names = []string{*app}
	}
	bs := agent.Factories()

	store := modelstore.New()
	if *snapshot != "" {
		store = modelstore.NewPersistent(*snapshot)
	}
	store.SetSnapshotFormat(format)
	opt := modelstore.Options{
		Transform: forest.Options{CloneThreshold: *threshold},
		Workers:   *workers,
	}

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tnodes\tedges\tdepth\tmerges\tback-edges\tnaive-tree\tforest\tshared\tcore-controls\tcore-tokens\tmodel-time\tblocklist\tsource")
	for _, name := range names {
		build, ok := bs[name]
		if !ok {
			return fmt.Errorf("unknown app %q", name)
		}
		b, err := store.Build(name, build, opt)
		if err != nil {
			return fmt.Errorf("modeling failed: %w", err)
		}
		if b.SnapshotErr != nil {
			fmt.Fprintln(stderr, "warning: model built but not persisted:", b.SnapshotErr)
		}
		g, fstats := b.Graph, b.TransformStats
		core := b.Model.Serialize(describe.CoreOptions())
		naive := fmt.Sprint(fstats.NaiveTreeNodes)
		if fstats.NaiveTreeNodes == math.MaxInt64 {
			naive = "overflow"
		}
		modelTime := b.RipStats.SimulatedTime.Round(1e9).String()
		source := fmt.Sprintf("rip(%d workers)", b.RipStats.Workers)
		if b.FromSnapshot {
			modelTime = "0s"
			source = "snapshot"
		}
		// The blocklist is app metadata, not part of the graph, so it is
		// read off a fresh instance (construction only, never ripped).
		blocklist := build().BlocklistSize()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%s\t%d\t%s\n",
			name, g.NodeCount(), g.EdgeCount(), g.MaxDepth(), len(g.MergeNodes()),
			fstats.BackEdgesRemoved, naive, fstats.ForestNodes, fstats.SharedSubtrees,
			describe.ControlsIn(core), describe.Tokens(core),
			modelTime, blocklist, source)

		if *sweep {
			tw.Flush()
			fmt.Fprintln(stdout, "\n  threshold sweep (Figure 4 trade-off):")
			for _, th := range []int{1, 8, 32, 64, 128, 512, 4096} {
				_, s, err := forest.Transform(g, forest.Options{CloneThreshold: th})
				if err != nil {
					continue
				}
				fmt.Fprintf(stdout, "    threshold %5d: forest %6d nodes, %3d shared subtrees, %4d cloned merges\n",
					th, s.ForestNodes, s.SharedSubtrees, s.Cloned)
			}
			fmt.Fprintln(stdout)
		}
	}
	tw.Flush()

	if *snapshot != "" {
		fmt.Fprintf(stdout, "\nsnapshots in %s: later runs rebuild these models with zero rip clicks.\n", *snapshot)
	}
	fmt.Fprintln(stdout, "\nFigure 4: the naive full-clone tree explodes with merge-heavy graphs while")
	fmt.Fprintln(stdout, "the forest stays linear; see the naive-tree vs forest columns above and the")
	fmt.Fprintln(stdout, "synthetic diamond-chain benchmark (BenchmarkFig4_TopologyTransform).")
	return nil
}
