// Command dmi-model runs the offline phase (paper §3.2, §4.1, §5.2): it
// rips each simulated application into a UI Navigation Graph, transforms
// the graph into a path-unambiguous forest, and reports modeling cost,
// topology statistics, and the Figure 4 graph→tree→forest comparison.
//
// Modeling goes through the model store: -workers distributes the rip over
// a pool of throwaway instances (byte-identical result), and -snapshot
// persists the ripped graphs so later runs rebuild the models with zero rip
// clicks — compact binary by default, -snapshot-format json for the
// greppable debug form (either format loads either way).
//
// -replicas shards the rip across a fleet of dmi-serve replicas instead of
// the in-process pool: each frame expansion ships over POST /v1/rip and the
// coordinator merges the results into the same byte-identical graph (see
// ung.RipDispatched and bench.RemoteExpander). A replica that dies mid-rip
// is down-marked and its frames re-dispatched, so the run survives failures
// without changing a byte of the output.
//
// -json writes a machine-readable modeling baseline (per-app rip wall-clock
// and click counts) for CI perf tracking; -cpuprofile/-memprofile write
// runtime/pprof profiles of the whole run (the heap profile is taken after
// a final GC, so it shows retained memory, not transient garbage).
//
// Usage:
//
//	dmi-model [-app Word|Excel|PowerPoint|Settings|Files|all] [-threshold 64]
//	          [-sweep] [-workers 4] [-snapshot DIR] [-snapshot-format binary|json]
//	          [-replicas URL,URL,...] [-json FILE] [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/agent"
	"repro/internal/bench"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/modelstore"
	"repro/internal/serveproto"
	"repro/internal/ung"
)

// ripBatch is the frame-coalescing factor for distributed rips: enough to
// amortize the HTTP round trip over a useful chunk of the DFS stack without
// letting one envelope pin a replica for long.
const ripBatch = 8

// replicaWait bounds how long -replicas waits for every replica's /healthz
// to report ready before the run starts. A variable so tests can shorten
// the not-ready path.
var replicaWait = 60 * time.Second

// errUsage marks a flag-parse failure the FlagSet has already reported to
// stderr; main must not print it again.
var errUsage = errors.New("invalid usage")

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the CLI against the given argument list and streams; main is
// a thin exit-code shim around it so tests can drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dmi-model", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "all", "application to model (Word, Excel, PowerPoint, Settings, Files, all)")
	threshold := fs.Int("threshold", 64, "clone-cost threshold for selective externalization")
	sweep := fs.Bool("sweep", false, "sweep externalization thresholds (design-choice ablation)")
	workers := fs.Int("workers", 4, "rip worker-pool size (1 = sequential)")
	snapshot := fs.String("snapshot", "", "directory for graph snapshots (reused across runs)")
	snapshotFormat := fs.String("snapshot-format", "binary", "snapshot encoding: binary (compact default) or json (debug)")
	replicas := fs.String("replicas", "", "comma-separated dmi-serve base URLs to shard the rip across (empty = in-process pool)")
	jsonOut := fs.String("json", "", "write a machine-readable modeling baseline (per-app rip wall-clock) to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a runtime/pprof CPU profile of the whole run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (after a final GC) to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage was printed, not an error
		}
		return errUsage
	}
	format, err := modelstore.ParseSnapshotFormat(*snapshotFormat)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return errUsage
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("dmi-model: cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("dmi-model: cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	names := agent.AppNames()
	if *app != "all" {
		names = []string{*app}
	}
	bs := agent.Factories()

	store := modelstore.New()
	if *snapshot != "" {
		store = modelstore.NewPersistent(*snapshot)
	}
	store.SetSnapshotFormat(format)
	opt := modelstore.Options{
		Transform: forest.Options{CloneThreshold: *threshold},
		Workers:   *workers,
	}
	var fleet []string
	if *replicas != "" {
		for _, u := range strings.Split(*replicas, ",") {
			if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
				fleet = append(fleet, u)
			}
		}
		if len(fleet) == 0 {
			fmt.Fprintln(stderr, "dmi-model: -replicas names no URLs")
			return errUsage
		}
		if err := waitReplicas(fleet, stderr); err != nil {
			return fmt.Errorf("dmi-model: %w", err)
		}
		opt.NewExpander = func(app string) (ung.Expander, error) {
			return bench.NewRemoteExpander(fleet, app, bench.RemoteOptions{
				Batch: ripBatch,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(stderr, "dmi-model: "+format+"\n", args...)
				},
			})
		}
	}

	var records []ripRecord
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tnodes\tedges\tdepth\tmerges\tback-edges\tnaive-tree\tforest\tshared\tcore-controls\tcore-tokens\tmodel-time\tblocklist\tsource")
	for _, name := range names {
		build, ok := bs[name]
		if !ok {
			return fmt.Errorf("unknown app %q", name)
		}
		wallStart := time.Now()
		b, err := store.Build(name, build, opt)
		if err != nil {
			return fmt.Errorf("modeling failed: %w", err)
		}
		wall := time.Since(wallStart)
		if b.SnapshotErr != nil {
			fmt.Fprintln(stderr, "warning: model built but not persisted:", b.SnapshotErr)
		}
		g, fstats := b.Graph, b.TransformStats
		core := b.Model.Serialize(describe.CoreOptions())
		naive := fmt.Sprint(fstats.NaiveTreeNodes)
		if fstats.NaiveTreeNodes == math.MaxInt64 {
			naive = "overflow"
		}
		modelTime := b.RipStats.SimulatedTime.Round(1e9).String()
		source := fmt.Sprintf("rip(%d workers)", b.RipStats.Workers)
		if len(fleet) > 0 {
			source = fmt.Sprintf("rip(%d replicas)", len(fleet))
		}
		if b.FromSnapshot {
			modelTime = "0s"
			source = "snapshot"
		}
		records = append(records, ripRecord{
			App:         name,
			Replicas:    len(fleet),
			Workers:     b.RipStats.Workers,
			Nodes:       g.NodeCount(),
			Edges:       g.EdgeCount(),
			Clicks:      b.RipStats.Clicks,
			SimSeconds:  b.RipStats.SimulatedTime.Seconds(),
			WallSeconds: wall.Seconds(),
			Source:      source,
		})
		// The blocklist is app metadata, not part of the graph, so it is
		// read off a fresh instance (construction only, never ripped).
		blocklist := build().BlocklistSize()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%s\t%d\t%s\n",
			name, g.NodeCount(), g.EdgeCount(), g.MaxDepth(), len(g.MergeNodes()),
			fstats.BackEdgesRemoved, naive, fstats.ForestNodes, fstats.SharedSubtrees,
			describe.ControlsIn(core), describe.Tokens(core),
			modelTime, blocklist, source)

		if *sweep {
			tw.Flush()
			fmt.Fprintln(stdout, "\n  threshold sweep (Figure 4 trade-off):")
			for _, th := range []int{1, 8, 32, 64, 128, 512, 4096} {
				_, s, err := forest.Transform(g, forest.Options{CloneThreshold: th})
				if err != nil {
					continue
				}
				fmt.Fprintf(stdout, "    threshold %5d: forest %6d nodes, %3d shared subtrees, %4d cloned merges\n",
					th, s.ForestNodes, s.SharedSubtrees, s.Cloned)
			}
			fmt.Fprintln(stdout)
		}
	}
	tw.Flush()

	if *snapshot != "" {
		fmt.Fprintf(stdout, "\nsnapshots in %s: later runs rebuild these models with zero rip clicks.\n", *snapshot)
	}
	fmt.Fprintln(stdout, "\nFigure 4: the naive full-clone tree explodes with merge-heavy graphs while")
	fmt.Fprintln(stdout, "the forest stays linear; see the naive-tree vs forest columns above and the")
	fmt.Fprintln(stdout, "synthetic diamond-chain benchmark (BenchmarkFig4_TopologyTransform).")

	if *jsonOut != "" {
		data, err := json.MarshalIndent(struct {
			Records []ripRecord `json:"records"`
		}{records}, "", "  ")
		if err != nil {
			return fmt.Errorf("dmi-model: json: %w", err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("dmi-model: json: %w", err)
		}
	}
	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			return fmt.Errorf("dmi-model: memprofile: %w", err)
		}
	}
	return nil
}

// ripRecord is one application's share of the -json modeling baseline: the
// rip's size, click cost, simulated time, and real wall-clock — what CI
// composes into BENCH_rip.json to compare 1-replica vs N-replica runs.
type ripRecord struct {
	App         string  `json:"app"`
	Replicas    int     `json:"replicas"`
	Workers     int     `json:"workers"`
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	Clicks      int     `json:"clicks"`
	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	Source      string  `json:"source"`
}

// waitReplicas polls every replica's /healthz until it reports ready and
// speaking the /v1 protocol generation, so a rip never starts against a
// fleet that is still prewarming (or one that would 404 every envelope).
func waitReplicas(urls []string, stderr io.Writer) error {
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(replicaWait)
	for _, u := range urls {
		for {
			hz, err := probeReplica(client, u)
			if err == nil {
				if hz.Proto < serveproto.ProtoV1 {
					return fmt.Errorf("replica %s speaks protocol %d; distributed rip needs the /v1 route set", u, hz.Proto)
				}
				fmt.Fprintf(stderr, "dmi-model: replica %s ready (%d apps)\n", u, hz.Apps)
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replica %s not ready after %s: %w", u, replicaWait, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}

// probeReplica runs one /healthz round trip.
func probeReplica(client *http.Client, base string) (serveproto.Health, error) {
	var hz serveproto.Health
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return hz, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return hz, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return hz, fmt.Errorf("healthz body: %w", err)
	}
	if !hz.OK {
		return hz, errors.New("replica reports not ready")
	}
	return hz, nil
}

// writeHeapProfile snapshots retained memory after a final GC.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
