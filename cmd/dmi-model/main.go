// Command dmi-model runs the offline phase (paper §3.2, §4.1, §5.2): it
// rips each simulated Office application into a UI Navigation Graph,
// transforms the graph into a path-unambiguous forest, and reports modeling
// cost, topology statistics, and the Figure 4 graph→tree→forest comparison.
//
// Usage:
//
//	dmi-model [-app Word|Excel|PowerPoint|all] [-threshold 64] [-sweep]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"repro/internal/appkit"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/office/excel"
	"repro/internal/office/slides"
	"repro/internal/office/word"
	"repro/internal/ung"
)

func builders() map[string]func() *appkit.App {
	return map[string]func() *appkit.App{
		"Word":       func() *appkit.App { return word.New().App },
		"Excel":      func() *appkit.App { return excel.New().App },
		"PowerPoint": func() *appkit.App { return slides.New(12).App },
	}
}

func main() {
	app := flag.String("app", "all", "application to model (Word, Excel, PowerPoint, all)")
	threshold := flag.Int("threshold", 64, "clone-cost threshold for selective externalization")
	sweep := flag.Bool("sweep", false, "sweep externalization thresholds (design-choice ablation)")
	flag.Parse()

	names := []string{"Word", "Excel", "PowerPoint"}
	if *app != "all" {
		names = []string{*app}
	}
	bs := builders()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tnodes\tedges\tdepth\tmerges\tback-edges\tnaive-tree\tforest\tshared\tcore-controls\tcore-tokens\tmodel-time\tblocklist")
	for _, name := range names {
		build, ok := bs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown app %q\n", name)
			os.Exit(1)
		}
		a := build()
		g, stats, err := ung.Rip(a, ung.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rip failed:", err)
			os.Exit(1)
		}
		f, fs, err := forest.Transform(g, forest.Options{CloneThreshold: *threshold})
		if err != nil {
			fmt.Fprintln(os.Stderr, "transform failed:", err)
			os.Exit(1)
		}
		model := describe.NewModel(f)
		core := model.Serialize(describe.CoreOptions())
		naive := fmt.Sprint(fs.NaiveTreeNodes)
		if fs.NaiveTreeNodes == math.MaxInt64 {
			naive = "overflow"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%s\t%d\n",
			name, g.NodeCount(), g.EdgeCount(), g.MaxDepth(), len(g.MergeNodes()),
			fs.BackEdgesRemoved, naive, fs.ForestNodes, fs.SharedSubtrees,
			describe.ControlsIn(core), describe.Tokens(core),
			stats.SimulatedTime.Round(1e9), a.BlocklistSize())

		if *sweep {
			tw.Flush()
			fmt.Println("\n  threshold sweep (Figure 4 trade-off):")
			for _, th := range []int{1, 8, 32, 64, 128, 512, 4096} {
				_, s, err := forest.Transform(g, forest.Options{CloneThreshold: th})
				if err != nil {
					continue
				}
				fmt.Printf("    threshold %5d: forest %6d nodes, %3d shared subtrees, %4d cloned merges\n",
					th, s.ForestNodes, s.SharedSubtrees, s.Cloned)
			}
			fmt.Println()
		}
	}
	tw.Flush()

	fmt.Println("\nFigure 4: the naive full-clone tree explodes with merge-heavy graphs while")
	fmt.Println("the forest stays linear; see the naive-tree vs forest columns above and the")
	fmt.Println("synthetic diamond-chain benchmark (BenchmarkFig4_TopologyTransform).")
}
