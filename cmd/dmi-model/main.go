// Command dmi-model runs the offline phase (paper §3.2, §4.1, §5.2): it
// rips each simulated Office application into a UI Navigation Graph,
// transforms the graph into a path-unambiguous forest, and reports modeling
// cost, topology statistics, and the Figure 4 graph→tree→forest comparison.
//
// Modeling goes through the model store: -workers distributes the rip over
// a pool of throwaway instances (byte-identical result), and -snapshot
// persists the ripped graphs as JSON so later runs rebuild the models with
// zero rip clicks.
//
// Usage:
//
//	dmi-model [-app Word|Excel|PowerPoint|all] [-threshold 64] [-sweep]
//	          [-workers 4] [-snapshot DIR]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"repro/internal/agent"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/modelstore"
)

func main() {
	app := flag.String("app", "all", "application to model (Word, Excel, PowerPoint, all)")
	threshold := flag.Int("threshold", 64, "clone-cost threshold for selective externalization")
	sweep := flag.Bool("sweep", false, "sweep externalization thresholds (design-choice ablation)")
	workers := flag.Int("workers", 4, "rip worker-pool size (1 = sequential)")
	snapshot := flag.String("snapshot", "", "directory for JSON graph snapshots (reused across runs)")
	flag.Parse()

	names := []string{"Word", "Excel", "PowerPoint"}
	if *app != "all" {
		names = []string{*app}
	}
	bs := agent.Factories()

	store := modelstore.New()
	if *snapshot != "" {
		store = modelstore.NewPersistent(*snapshot)
	}
	opt := modelstore.Options{
		Transform: forest.Options{CloneThreshold: *threshold},
		Workers:   *workers,
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tnodes\tedges\tdepth\tmerges\tback-edges\tnaive-tree\tforest\tshared\tcore-controls\tcore-tokens\tmodel-time\tblocklist\tsource")
	for _, name := range names {
		build, ok := bs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown app %q\n", name)
			os.Exit(1)
		}
		b, err := store.Build(name, build, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "modeling failed:", err)
			os.Exit(1)
		}
		if b.SnapshotErr != nil {
			fmt.Fprintln(os.Stderr, "warning: model built but not persisted:", b.SnapshotErr)
		}
		g, fs := b.Graph, b.TransformStats
		core := b.Model.Serialize(describe.CoreOptions())
		naive := fmt.Sprint(fs.NaiveTreeNodes)
		if fs.NaiveTreeNodes == math.MaxInt64 {
			naive = "overflow"
		}
		modelTime := b.RipStats.SimulatedTime.Round(1e9).String()
		source := fmt.Sprintf("rip(%d workers)", b.RipStats.Workers)
		if b.FromSnapshot {
			modelTime = "0s"
			source = "snapshot"
		}
		// The blocklist is app metadata, not part of the graph, so it is
		// read off a fresh instance (construction only, never ripped).
		blocklist := build().BlocklistSize()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%s\t%d\t%s\n",
			name, g.NodeCount(), g.EdgeCount(), g.MaxDepth(), len(g.MergeNodes()),
			fs.BackEdgesRemoved, naive, fs.ForestNodes, fs.SharedSubtrees,
			describe.ControlsIn(core), describe.Tokens(core),
			modelTime, blocklist, source)

		if *sweep {
			tw.Flush()
			fmt.Println("\n  threshold sweep (Figure 4 trade-off):")
			for _, th := range []int{1, 8, 32, 64, 128, 512, 4096} {
				_, s, err := forest.Transform(g, forest.Options{CloneThreshold: th})
				if err != nil {
					continue
				}
				fmt.Printf("    threshold %5d: forest %6d nodes, %3d shared subtrees, %4d cloned merges\n",
					th, s.ForestNodes, s.SharedSubtrees, s.Cloned)
			}
			fmt.Println()
		}
	}
	tw.Flush()

	if *snapshot != "" {
		fmt.Printf("\nsnapshots in %s: later runs rebuild these models with zero rip clicks.\n", *snapshot)
	}
	fmt.Println("\nFigure 4: the naive full-clone tree explodes with merge-heavy graphs while")
	fmt.Println("the forest stays linear; see the naive-tree vs forest columns above and the")
	fmt.Println("synthetic diamond-chain benchmark (BenchmarkFig4_TopologyTransform).")
}
