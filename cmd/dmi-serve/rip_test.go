package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/agent"
	"repro/internal/bench"
	"repro/internal/modelstore"
	"repro/internal/serveproto"
	"repro/internal/taskpack"
	"repro/internal/ung"
)

// postRip posts one rip envelope to the bare server, declaring its frame
// count like a well-behaved coordinator.
func postRip(t *testing.T, s *server, req serveproto.RipRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	hr := httptest.NewRequest(http.MethodPost, "/v1/rip", bytes.NewReader(body))
	hr.Header.Set(serveproto.RipBatchHeader, fmt.Sprint(len(req.Frames)))
	s.ServeHTTP(rec, hr)
	return rec
}

// TestRipValidation pins the envelope checks of POST /v1/rip: the /v1/cells
// pattern with request-level rejections (405/413/400/409/404) and per-frame
// status independence past them.
func TestRipValidation(t *testing.T) {
	s := newBareServer(modelstore.New(), taskpack.Builtin(), 1, 1)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/rip", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/rip: status %d, want 405", rec.Code)
	}
	// The rip endpoint is v1-only: no unversioned alias.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/rip", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("POST /rip: status %d, want 404 (rip is v1-only)", rec.Code)
	}

	// Undeclared oversize body trips the single-frame cap; declaring the
	// frame count scales it (decoder reads through the padding mid-value).
	pad := strings.Repeat("x", serveproto.MaxRequestBytes)
	big := []byte(`{"app":"Word","frames":[{"id":"` + pad + `"}]}`)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/rip", bytes.NewReader(big)))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("undeclared oversize rip body: status %d, want 413", rec.Code)
	}
	rec = httptest.NewRecorder()
	hr := httptest.NewRequest(http.MethodPost, "/v1/rip", bytes.NewReader(big))
	hr.Header.Set(serveproto.RipBatchHeader, "2")
	s.ServeHTTP(rec, hr)
	if rec.Code == http.StatusRequestEntityTooLarge {
		t.Errorf("declared-2 rip body still 413; the cap must scale with the declaration")
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/rip", strings.NewReader("{not json")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed rip body: status %d, want 400", rec.Code)
	}

	if rec := postRip(t, s, serveproto.RipRequest{
		Pack: "other-pack", PackHash: "beef",
		App: "Word", Frames: []serveproto.RipFrame{{ID: "x"}},
	}); rec.Code != http.StatusConflict {
		t.Errorf("pack mismatch: status %d, want 409", rec.Code)
	}
	if rec := postRip(t, s, serveproto.RipRequest{
		App: "NoSuchApp", Frames: []serveproto.RipFrame{{ID: "x"}},
	}); rec.Code != http.StatusNotFound {
		t.Errorf("unknown app: status %d, want 404", rec.Code)
	}
	if rec := postRip(t, s, serveproto.RipRequest{
		App: "Word", Context: "no-such-context", Frames: []serveproto.RipFrame{{ID: "x"}},
	}); rec.Code != http.StatusNotFound {
		t.Errorf("unknown context: status %d, want 404", rec.Code)
	}

	// Per-frame independence: a defective frame answers 400 in place while
	// its envelope-mates still run.
	rec = postRip(t, s, serveproto.RipRequest{App: "Word", Frames: []serveproto.RipFrame{
		{ID: ""},
		{ID: "definitely-not-a-control"},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("mixed envelope: status %d, want 200; %s", rec.Code, rec.Body.String())
	}
	var resp serveproto.RipResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	if resp.Results[0].Status != http.StatusBadRequest {
		t.Errorf("empty-id frame: status %d, want 400", resp.Results[0].Status)
	}
	if resp.Results[1].Status != http.StatusOK || resp.Results[1].Expansion == nil {
		t.Fatalf("unknown-control frame should still expand (to a skip): %+v", resp.Results[1])
	}
	if resp.Results[1].Expansion.Outcome != serveproto.RipOutcomeSkipped {
		t.Errorf("unknown control expands to %q, want %q", resp.Results[1].Expansion.Outcome, serveproto.RipOutcomeSkipped)
	}
}

// TestRipMatchesLocalExpand is the replica-side determinism check: an
// expansion served over POST /v1/rip must equal ung.ExpandFrame on a local
// instance driven through the same frame sequence — same outcome, same
// reveals in the same order, same click and snapshot counts — including
// across envelopes that reuse the warm pooled instance. (The comparison
// instance mirrors the pooled one's history rather than starting fresh per
// envelope: stateful controls like combo toggles survive a soft reset, so
// an expansion is a deterministic function of the instance's expansion
// history, not of the frame alone — the same contract the in-process worker
// pool has always run under.)
func TestRipMatchesLocalExpand(t *testing.T) {
	const app = "Settings"
	s := newBareServer(modelstore.New(), taskpack.Builtin(), 1, 1)
	factory := agent.Factories()[app]

	// Harvest real frames: rip the app locally and take the first
	// MaxRipFrames discovered controls as depth-0 probes.
	g, _, err := ung.Rip(factory(), ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var frames []serveproto.RipFrame
	for _, id := range g.Order[1:] {
		if len(frames) == serveproto.MaxRipFrames {
			break
		}
		frames = append(frames, serveproto.RipFrame{ID: id})
	}

	local := factory() // mirrors the server's pooled instance across rounds
	for round := 0; round < 2; round++ {
		rec := postRip(t, s, serveproto.RipRequest{App: app, Frames: frames})
		if rec.Code != http.StatusOK {
			t.Fatalf("round %d: status %d; %s", round, rec.Code, rec.Body.String())
		}
		var resp serveproto.RipResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != len(frames) {
			t.Fatalf("round %d: %d results for %d frames", round, len(resp.Results), len(frames))
		}
		for i, fr := range frames {
			res := resp.Results[i]
			if res.Status != http.StatusOK || res.Expansion == nil {
				t.Fatalf("round %d frame %q: %+v", round, fr.ID, res)
			}
			remote, err := res.Expansion.Expansion()
			if err != nil {
				t.Fatalf("round %d frame %q: %v", round, fr.ID, err)
			}
			want := ung.ExpandFrame(local, "", ung.Frame{ID: fr.ID, Path: fr.Path})
			if !reflect.DeepEqual(remote, want) {
				t.Errorf("round %d frame %q diverges from the local expansion:\n got %+v\nwant %+v",
					round, fr.ID, remote, want)
			}
		}
	}

	// The replica counted its expansion ledger.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var st serveproto.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if want := int64(2 * len(frames)); st.Expansions != want {
		t.Errorf("stats report %d expansions, want %d", st.Expansions, want)
	}
}

// failingProxy wraps a real server and simulates a mid-rip kill: after
// serving failAfter rip envelopes it answers 500 to everything, health
// probes included — indistinguishable from a dead process to the expander.
type failingProxy struct {
	inner     http.Handler
	failAfter int64
	envelopes atomic.Int64
}

func (p *failingProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.envelopes.Load() >= p.failAfter {
		http.Error(w, "killed", http.StatusInternalServerError)
		return
	}
	if r.URL.Path == "/v1/rip" && r.Method == http.MethodPost {
		p.envelopes.Add(1)
	}
	p.inner.ServeHTTP(w, r)
}

// TestRipShardedEndToEnd drives the whole distributed-rip stack — real
// daemon handlers behind HTTP, bench.RemoteExpander sharding across them,
// ung.RipDispatched merging — and requires the merged graph to be
// byte-identical to the sequential rip even though one replica is "killed"
// mid-rip and its in-flight frames re-dispatched to the survivor.
func TestRipShardedEndToEnd(t *testing.T) {
	const app = "Settings"
	factory := agent.Factories()[app]
	seq, _, err := ung.Rip(factory(), ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ung.Encode(seq)
	if err != nil {
		t.Fatal(err)
	}

	dying := &failingProxy{
		inner:     newBareServer(modelstore.New(), taskpack.Builtin(), 1, 1),
		failAfter: 2,
	}
	srvDying := httptest.NewServer(dying)
	defer srvDying.Close()
	srvHealthy := httptest.NewServer(newBareServer(modelstore.New(), taskpack.Builtin(), 1, 1))
	defer srvHealthy.Close()

	re, err := bench.NewRemoteExpander(
		[]string{srvDying.URL, srvHealthy.URL}, app,
		bench.RemoteOptions{Batch: 8, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	g, st, err := ung.RipDispatched(factory(), ung.Config{}, re)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ung.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed rip with a mid-rip kill is not byte-identical to sequential: %d vs %d bytes",
			len(got), len(want))
	}
	if st.Clicks == 0 {
		t.Errorf("folded stats lost the clicks: %+v", st)
	}
	if re.Retries() == 0 {
		t.Error("the killed replica's envelopes were never re-dispatched")
	}
	downed := false
	for _, rs := range re.Stats() {
		downed = downed || rs.Down
	}
	if !downed {
		t.Error("the killed replica was never down-marked")
	}
}
