package main

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/agent"
	"repro/internal/appkit"
	"repro/internal/serveproto"
	"repro/internal/ung"
)

// ripPoolCap is how many warm application instances a replica keeps per app
// for /v1/rip. An instance is cheap to build but not free; keeping a small
// pool means a coordinator's steady frame stream never pays instance
// construction on the hot path, while a burst beyond the pool just builds
// throwaway instances that are dropped on return.
const ripPoolCap = 8

// ripPool caches warm application instances per app across /v1/rip
// requests. Reuse is safe by construction: ung.ExpandFrame starts with a
// soft reset and replays the frame's click path, so a frame's expansion is
// a pure function of (app, context, frame) no matter what the instance did
// before — the same idempotency argument that makes cross-replica
// re-dispatch safe makes instance reuse safe.
type ripPool struct {
	mu   sync.Mutex
	free map[string]chan *appkit.App
}

func newRipPool() *ripPool {
	return &ripPool{free: make(map[string]chan *appkit.App)}
}

func (p *ripPool) lane(app string) chan *appkit.App {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch, ok := p.free[app]
	if !ok {
		ch = make(chan *appkit.App, ripPoolCap)
		p.free[app] = ch
	}
	return ch
}

// get returns a warm instance or builds a fresh one.
func (p *ripPool) get(app string, factory func() *appkit.App) *appkit.App {
	select {
	case inst := <-p.lane(app):
		return inst
	default:
		return factory()
	}
}

// put returns an instance to the pool, dropping it when the pool is full.
func (p *ripPool) put(app string, inst *appkit.App) {
	select {
	case p.lane(app) <- inst:
	default:
	}
}

// handleRip is POST /v1/rip: expand up to MaxRipFrames frames of one
// application context on this replica's own instances and return the
// differential captures. The envelope follows the /v1/cells pattern — the
// pack handshake and the app/context resolution are request-level (409/404
// reject the whole envelope), everything past them is per-frame, each frame
// carrying the status it would have gotten alone so one malformed frame
// never poisons its envelope-mates.
func (s *server) handleRip(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Body cap scaled by the declared frame count, exactly like the batch
	// endpoint: the declaration sizes the MaxBytesReader before a byte is
	// read, and the decoded envelope is re-checked against MaxRipFrames by
	// ParseRipRequest.
	declared, _ := strconv.Atoi(r.Header.Get(serveproto.RipBatchHeader))
	limit := serveproto.RipRequestBytes(declared)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes (declare the frame count in %s)",
				limit, serveproto.RipBatchHeader), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	req, err := serveproto.ParseRipRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.rejectPackMismatch(w, req.Pack, req.PackHash) {
		return
	}
	factory, ok := agent.Factories()[req.App]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown app %q", req.App), http.StatusNotFound)
		return
	}
	inst := s.rip.get(req.App, factory)
	defer s.rip.put(req.App, inst)
	// An unknown context would not fail loudly on the instance (the ripper's
	// restore ignores EnterContext errors, by design for the "" base
	// context), but expanding a frame in the wrong context would return
	// wrong-but-plausible reveals — a silent catalog skew between the
	// coordinator's probe and this replica. Reject it before touching a
	// frame.
	if req.Context != "" && !knownContext(inst, req.Context) {
		http.Error(w, fmt.Sprintf("unknown context %q for app %q", req.Context, req.App), http.StatusNotFound)
		return
	}

	results := make([]serveproto.RipResult, len(req.Frames))
	expanded := 0
	for i, wf := range req.Frames {
		if err := serveproto.ValidateRipFrame(wf); err != nil {
			results[i] = serveproto.RipResult{Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		exp := ung.ExpandFrame(inst, req.Context, ung.Frame{ID: wf.ID, Path: wf.Path})
		we := serveproto.FromExpansion(exp)
		results[i] = serveproto.RipResult{Status: http.StatusOK, Expansion: &we}
		expanded++
	}

	s.mu.Lock()
	s.expansions += int64(expanded)
	s.mu.Unlock()

	writeJSON(w, serveproto.RipResponse{App: req.App, Context: req.Context, Results: results})
}

// knownContext reports whether the app registers the named context.
func knownContext(app *appkit.App, name string) bool {
	for _, c := range app.Contexts() {
		if c.Name == name {
			return true
		}
	}
	return false
}
