package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/bench"
	"repro/internal/modelstore"
	"repro/internal/serveproto"
	"repro/internal/taskpack"
)

func TestBadFlagIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-budget", "lots"}, &out, &errb); err == nil {
		t.Fatal("expected a flag-parse error")
	}
	if err := run([]string{"stray"}, &out, &errb); err == nil {
		t.Fatal("expected an error for a stray positional argument")
	}
}

func TestHelpFlagIsNotAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h should print usage and succeed, got %v", err)
	}
	if !strings.Contains(errb.String(), "Usage") {
		t.Errorf("usage text missing from stderr:\n%s", errb.String())
	}
}

// syncBuffer lets the test read the daemon's stderr while run() writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeDaemon is the serving-tier acceptance test, driven through run()
// at the binary boundary: a budget that cannot hold the whole catalog,
// concurrent POST /session traffic over all five apps, responses
// byte-identical to the in-process evaluation, and /stats showing ≥1
// eviction and ≥1 snapshot reload. CI runs it under -race.
func TestServeDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog modeling plus full-matrix evaluation")
	}
	const runs = 2

	// In-process ground truth: the full matrix through the shared store.
	models, err := agent.BuildModels()
	if err != nil {
		t.Fatal(err)
	}
	rep := bench.Run(models, runs)
	total := agent.StoreStats().ResidentBytes
	if total <= 0 {
		t.Fatalf("shared store reports no resident bytes: %+v", agent.StoreStats())
	}

	// One byte short of the catalog: every model fits alone, the five
	// together never do, so the prewarm itself must evict and the request
	// mix below must trigger snapshot reloads.
	budget := total - 1
	stderr := &syncBuffer{}
	errc := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		errc <- runCtx(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-budget", fmt.Sprint(budget),
			"-snapshot", t.TempDir(),
			"-workers", "2",
			"-parallel", "2",
		}, io.Discard, stderr)
	}()
	// The daemon goroutine serves until the shutdown subtest cancels ctx;
	// runCtx returning early means startup failed.
	addrRE := regexp.MustCompile(`listening on http://(\S+)`)
	var base string
	for deadline := time.Now().Add(3 * time.Minute); ; {
		if m := addrRE.FindStringSubmatch(stderr.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited during startup: %v\nstderr:\n%s", err, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	t.Run("healthz", func(t *testing.T) {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hz serveproto.Health
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || !hz.OK || hz.Apps != len(agent.AppNames()) {
			t.Fatalf("healthz: status %d, body %+v", resp.StatusCode, hz)
		}
		if hz.Instance == "" {
			t.Error("healthz must advertise a per-process instance id (restart detection for recovery probes)")
		}
	})

	// One task per app × two settings, all POSTed concurrently, twice, so
	// the store churns through eviction while requests are in flight.
	tasks := rep.Tasks
	taskIdx := map[string]int{}
	for i, task := range tasks {
		if _, ok := taskIdx[task.App]; !ok {
			taskIdx[task.App] = i
		}
	}
	if len(taskIdx) != len(agent.AppNames()) {
		t.Fatalf("benchmark covers %d apps, want %d", len(taskIdx), len(agent.AppNames()))
	}
	labels := []string{"GUI+DMI / GPT-5 / Medium", "GUI-only / 5-mini / Medium"}
	posted := 0
	t.Run("concurrent-byte-identical", func(t *testing.T) {
		var wg sync.WaitGroup
		for round := 0; round < 2; round++ {
			for app, ti := range taskIdx {
				for _, label := range labels {
					wg.Add(1)
					posted++
					go func(app string, ti int, label string) {
						defer wg.Done()
						body, _ := json.Marshal(serveproto.SessionRequest{
							App: app, Task: tasks[ti].ID, Setting: label, Runs: runs,
						})
						resp, err := http.Post(base+"/session", "application/json", bytes.NewReader(body))
						if err != nil {
							t.Errorf("%s/%s: %v", app, label, err)
							return
						}
						defer resp.Body.Close()
						raw, err := io.ReadAll(resp.Body)
						if err != nil || resp.StatusCode != http.StatusOK {
							t.Errorf("%s/%s: status %d (%v): %s", app, label, resp.StatusCode, err, raw)
							return
						}
						var got serveproto.RawSessionResponse
						if err := json.Unmarshal(raw, &got); err != nil {
							t.Errorf("%s/%s: %v", app, label, err)
							return
						}
						var row bench.Row
						found := false
						for _, r := range rep.Rows {
							if r.Setting.Label == label {
								row, found = r, true
							}
						}
						if !found {
							t.Errorf("report lacks row %q", label)
							return
						}
						want, err := json.Marshal(row.Outcomes[ti*runs : (ti+1)*runs])
						if err != nil {
							t.Error(err)
							return
						}
						if !bytes.Equal(got.Outcomes, want) {
							t.Errorf("%s/%s: daemon outcomes diverge from in-process bench.Run\n got: %s\nwant: %s",
								app, label, got.Outcomes, want)
						}
					}(app, ti, label)
				}
			}
		}
		wg.Wait()
	})

	t.Run("stats", func(t *testing.T) {
		resp, err := http.Get(base + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st serveproto.StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.Sessions != int64(posted) || st.Runs != int64(posted*runs) {
			t.Errorf("served %d sessions / %d runs, want %d / %d", st.Sessions, st.Runs, posted, posted*runs)
		}
		if st.Store.Evictions < 1 {
			t.Errorf("budget %d never forced an eviction: %+v", budget, st.Store)
		}
		if st.Store.SnapshotLoads < 1 {
			t.Errorf("no evicted model was reloaded from its snapshot: %+v", st.Store)
		}
		if st.Store.ResidentBytes > budget {
			t.Errorf("resident %d over budget %d", st.Store.ResidentBytes, budget)
		}
		if st.WarmHitRatio <= 0 || st.WarmHitRatio >= 1 {
			t.Errorf("warm-hit ratio %v outside (0,1) despite mixed traffic", st.WarmHitRatio)
		}
		if st.BudgetBytes != budget {
			t.Errorf("reported budget %d, want %d", st.BudgetBytes, budget)
		}
		for _, app := range agent.AppNames() {
			if st.CoreTokens[app] != models.CoreTokens[app] {
				t.Errorf("%s: daemon core tokens %d != in-process %d", app, st.CoreTokens[app], models.CoreTokens[app])
			}
		}
	})

	t.Run("validation", func(t *testing.T) {
		post := func(body string) *http.Response {
			t.Helper()
			resp, err := http.Post(base+"/session", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp
		}
		task := tasks[taskIdx["Word"]].ID
		cases := []struct {
			body string
			want int
		}{
			{`{not json`, http.StatusBadRequest},
			{`{"task":"no-such-task","setting":"GUI+DMI / GPT-5 / Medium"}`, http.StatusNotFound},
			{fmt.Sprintf(`{"task":%q,"setting":"no-such-setting"}`, task), http.StatusNotFound},
			{fmt.Sprintf(`{"app":"Excel","task":%q,"setting":"GUI+DMI / GPT-5 / Medium"}`, task), http.StatusBadRequest},
			{fmt.Sprintf(`{"task":%q,"setting":"GUI+DMI / GPT-5 / Medium","runs":%d}`, task, serveproto.MaxRuns+1), http.StatusBadRequest},
		}
		for _, c := range cases {
			if resp := post(c.body); resp.StatusCode != c.want {
				t.Errorf("POST %s: status %d, want %d", c.body, resp.StatusCode, c.want)
			}
		}
		if resp, err := http.Get(base + "/session"); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("GET /session: status %d, want 405", resp.StatusCode)
			}
		}
		if resp, err := http.Post(base+"/stats", "application/json", nil); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("POST /stats: status %d, want 405", resp.StatusCode)
			}
		}
	})

	// The batch endpoint must be transport-only: a POST /v1/cells carrying
	// one cell per app yields, cell for cell, the same outcome bytes as the
	// single-session endpoint and the in-process run.
	t.Run("v1-batch-byte-identical", func(t *testing.T) {
		apps := make([]string, 0, len(taskIdx))
		for _, task := range tasks {
			found := false
			for _, a := range apps {
				if a == task.App {
					found = true
					break
				}
			}
			if !found {
				apps = append(apps, task.App)
			}
		}
		cells := make([]serveproto.SessionRequest, 0, len(apps))
		for _, app := range apps {
			cells = append(cells, serveproto.SessionRequest{
				App: app, Task: tasks[taskIdx[app]].ID, Setting: labels[0], Runs: runs,
			})
		}
		body, _ := json.Marshal(serveproto.BatchRequest{Cells: cells})
		req, _ := http.NewRequest(http.MethodPost, base+"/v1/cells", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(serveproto.BatchSizeHeader, fmt.Sprint(len(cells)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("batch: status %d (%v): %s", resp.StatusCode, err, raw)
		}
		var br serveproto.RawBatchResponse
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatal(err)
		}
		var results []serveproto.RawBatchCellResult
		if err := json.Unmarshal(br.Results, &results); err != nil {
			t.Fatal(err)
		}
		if len(results) != len(cells) {
			t.Fatalf("batch of %d cells answered %d results", len(cells), len(results))
		}
		var row bench.Row
		for _, r := range rep.Rows {
			if r.Setting.Label == labels[0] {
				row = r
			}
		}
		for i, res := range results {
			if res.Status != http.StatusOK {
				t.Errorf("cell %d: status %d (%s)", i, res.Status, res.Error)
				continue
			}
			var sr serveproto.RawSessionResponse
			if err := json.Unmarshal(res.Response, &sr); err != nil {
				t.Errorf("cell %d: %v", i, err)
				continue
			}
			ti := taskIdx[apps[i]]
			want, err := json.Marshal(row.Outcomes[ti*runs : (ti+1)*runs])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sr.Outcomes, want) {
				t.Errorf("cell %d (%s): batched outcomes diverge from in-process bench.Run\n got: %s\nwant: %s",
					i, apps[i], sr.Outcomes, want)
			}
		}
	})

	// Graceful shutdown: cancel runCtx while a session is verifiably in
	// flight; the daemon must drain it (the POST completes with 200) and
	// then return nil — the clean-stop contract the coordinator's failure
	// handling relies on.
	t.Run("graceful-drain", func(t *testing.T) {
		task := tasks[taskIdx["Excel"]].ID
		type result struct {
			status int
			got    int
			err    error
		}
		resc := make(chan result, 1)
		go func() {
			body, _ := json.Marshal(serveproto.SessionRequest{
				Task: task, Setting: "GUI+DMI / GPT-5 / Medium", Runs: serveproto.MaxRuns,
			})
			resp, err := http.Post(base+"/session", "application/json", bytes.NewReader(body))
			if err != nil {
				resc <- result{err: err}
				return
			}
			defer resp.Body.Close()
			var sr serveproto.SessionResponse
			derr := json.NewDecoder(resp.Body).Decode(&sr)
			resc <- result{status: resp.StatusCode, got: len(sr.Outcomes), err: derr}
		}()
		// Wait until /stats reports the session in flight, so the cancel
		// below races nothing.
		for deadline := time.Now().Add(time.Minute); ; {
			resp, err := http.Get(base + "/stats")
			if err != nil {
				t.Fatal(err)
			}
			var st serveproto.StatsResponse
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if st.InFlight >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("session never showed up in flight")
			}
			time.Sleep(5 * time.Millisecond)
		}
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("graceful shutdown should return nil, got %v", err)
			}
		case <-time.After(2 * time.Minute):
			t.Fatal("daemon did not drain and exit after cancellation")
		}
		res := <-resc
		if res.err != nil || res.status != http.StatusOK || res.got != serveproto.MaxRuns {
			t.Fatalf("in-flight session was not drained: status %d, %d outcomes, err %v",
				res.status, res.got, res.err)
		}
		if out := stderr.String(); !strings.Contains(out, "draining") || !strings.Contains(out, "drained, exiting") {
			t.Errorf("shutdown log missing drain markers:\n%s", out)
		}
	})
}

// TestOversizeBodyIs413 pins the request-body cap: a payload over
// serveproto.MaxRequestBytes is refused with 413, while an ordinary
// malformed body stays a 400. Driven against a bare (unprewarmed) server —
// both paths reject before any model is touched.
func TestOversizeBodyIs413(t *testing.T) {
	s := newBareServer(modelstore.New(), taskpack.Builtin(), 1, 1)

	// A syntactically valid prefix, so the decoder keeps reading until the
	// byte cap trips rather than bailing on the first malformed character.
	big := `{"app":"` + strings.Repeat("x", serveproto.MaxRequestBytes) + `"}`
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/session", strings.NewReader(big)))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body: status %d, want 413; body: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/session", strings.NewReader("{not json")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", rec.Code)
	}
}

// TestRouteSets pins both route generations: every endpoint answers under
// /v1/ and (except the v1-only batch route) under its pre-v1 unversioned
// alias, with both sets backed by the same handlers — probed with
// wrong-method requests, which prove the route is wired without paying for
// a session. Dropping an alias before its deprecation release, or wiring an
// alias to a different handler, fails here.
func TestRouteSets(t *testing.T) {
	s := newBareServer(modelstore.New(), taskpack.Builtin(), 1, 1)
	probe := func(method, path string) int {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
		return rec.Code
	}

	// Wrong method on a wired route is 405; an unwired route is 404.
	for _, path := range []string{"/v1/session", "/session", "/v1/cells"} {
		if code := probe(http.MethodGet, path); code != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", path, code)
		}
	}
	for _, path := range []string{"/v1/stats", "/stats", "/v1/healthz", "/healthz"} {
		if code := probe(http.MethodPost, path); code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, code)
		}
	}
	// The batch endpoint never existed unversioned — no alias to keep.
	if code := probe(http.MethodPost, "/cells"); code != http.StatusNotFound {
		t.Errorf("POST /cells: status %d, want 404 (batch is v1-only)", code)
	}

	// Both healthz routes serve the same readiness body, now carrying the
	// protocol generation.
	for _, path := range []string{"/v1/healthz", "/healthz"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		var hz serveproto.Health
		if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if rec.Code != http.StatusOK || !hz.OK || hz.Proto != serveproto.ProtoV1 {
			t.Errorf("GET %s: status %d, body %+v — want 200 with proto %d", path, rec.Code, hz, serveproto.ProtoV1)
		}
	}
}

// batchBodyOfSize builds a syntactically valid one-cell batch body padded
// to exactly size bytes (the padding lives inside the task string, so the
// decoder must read through it and the byte cap is exercised mid-value).
func batchBodyOfSize(t *testing.T, size int) []byte {
	t.Helper()
	skeleton := `{"cells":[{"task":"","setting":"s","runs":1}]}`
	if size <= len(skeleton) {
		t.Fatalf("size %d smaller than the %d-byte skeleton", size, len(skeleton))
	}
	body := `{"cells":[{"task":"` + strings.Repeat("x", size-len(skeleton)) + `","setting":"s","runs":1}]}`
	if len(body) != size {
		t.Fatalf("built %d bytes, want %d", len(body), size)
	}
	return []byte(body)
}

// TestBatchBodyCapScalesWithDeclaredSize is the 413 regression test at the
// boundary: POST /v1/cells sizes its MaxBytesReader from the declared batch
// size (Dmi-Batch-Cells) instead of the flat per-session cap, so a full
// batch of maximum-size cells fits — while an undeclared or under-declared
// batch still trips the single-cell cap, and an absurd declaration clamps
// at MaxBatchCells.
func TestBatchBodyCapScalesWithDeclaredSize(t *testing.T) {
	s := newBareServer(modelstore.New(), taskpack.Builtin(), 1, 1)
	post := func(body []byte, declare string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/cells", bytes.NewReader(body))
		if declare != "" {
			req.Header.Set(serveproto.BatchSizeHeader, declare)
		}
		s.ServeHTTP(rec, req)
		return rec
	}

	// Exactly at the single-cell cap: accepted without any declaration (the
	// unknown task is a per-cell 404 inside a 200 batch — past the cap).
	rec := post(batchBodyOfSize(t, serveproto.MaxRequestBytes), "")
	if rec.Code != http.StatusOK {
		t.Errorf("body at the %d-byte cap: status %d, want 200; %s",
			serveproto.MaxRequestBytes, rec.Code, rec.Body.String())
	}

	// One byte over: the flat cap must trip without a declaration and must
	// NOT trip when the client declares a 2-cell batch.
	over := batchBodyOfSize(t, serveproto.MaxRequestBytes+1)
	if rec := post(over, ""); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("undeclared over-cap body: status %d, want 413", rec.Code)
	}
	if rec := post(over, "1"); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("declared-1 over-cap body: status %d, want 413", rec.Code)
	}
	if rec := post(over, "2"); rec.Code != http.StatusOK {
		t.Errorf("declared-2 over-cap body: status %d, want 200; %s", rec.Code, rec.Body.String())
	}

	// The declaration scales the cap but never past MaxBatchCells: a body
	// over the full-batch limit is refused no matter what the client claims.
	tooBig := batchBodyOfSize(t, int(serveproto.BatchRequestBytes(serveproto.MaxBatchCells))+1)
	if rec := post(tooBig, fmt.Sprint(1<<30)); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("body over the clamped max-batch cap: status %d, want 413", rec.Code)
	}
}

// TestBatchValidation pins the batch envelope checks and per-cell status
// independence on a bare server (every probe rejects before model work).
func TestBatchValidation(t *testing.T) {
	s := newBareServer(modelstore.New(), taskpack.Builtin(), 1, 1)
	post := func(req serveproto.BatchRequest) *httptest.ResponseRecorder {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		hr := httptest.NewRequest(http.MethodPost, "/v1/cells", bytes.NewReader(body))
		hr.Header.Set(serveproto.BatchSizeHeader, fmt.Sprint(len(req.Cells)))
		s.ServeHTTP(rec, hr)
		return rec
	}

	if rec := post(serveproto.BatchRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", rec.Code)
	}
	overfull := serveproto.BatchRequest{Cells: make([]serveproto.SessionRequest, serveproto.MaxBatchCells+1)}
	if rec := post(overfull); rec.Code != http.StatusBadRequest {
		t.Errorf("batch over the %d-cell cap: status %d, want 400", serveproto.MaxBatchCells, rec.Code)
	}

	// A batch-level pack mismatch rejects the whole call with the same 409
	// body as a single session.
	rec := post(serveproto.BatchRequest{Pack: "custom", Cells: []serveproto.SessionRequest{{Task: "word-replace", Setting: "D-M"}}})
	if rec.Code != http.StatusConflict {
		t.Fatalf("batch pack mismatch: status %d, want 409", rec.Code)
	}
	var mm serveproto.PackMismatch
	if err := json.Unmarshal(rec.Body.Bytes(), &mm); err != nil || mm.HavePack != taskpack.BuiltinName {
		t.Errorf("409 body is not a PackMismatch: %v %s", err, rec.Body.String())
	}

	// Per-cell independence: an unknown task, an over-cap runs count, and a
	// cell-level pack mismatch ride one batch and each get their own status
	// — the batch itself is 200.
	rec = post(serveproto.BatchRequest{Cells: []serveproto.SessionRequest{
		{Task: "no-such-task", Setting: "GUI+DMI / GPT-5 / Medium", Runs: 1},
		{Task: "word-replace", Setting: "D-M", Runs: serveproto.MaxRuns + 1},
		{Task: "word-replace", Setting: "D-M", Runs: 1, Pack: "custom"},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("mixed batch: status %d, want 200; %s", rec.Code, rec.Body.String())
	}
	var br serveproto.BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	want := []int{http.StatusNotFound, http.StatusBadRequest, http.StatusConflict}
	if len(br.Results) != len(want) {
		t.Fatalf("%d results for %d cells", len(br.Results), len(want))
	}
	for i, res := range br.Results {
		if res.Status != want[i] {
			t.Errorf("cell %d: status %d, want %d (%s)", i, res.Status, want[i], res.Error)
		}
		if res.Error == "" {
			t.Errorf("cell %d: rejection carries no error", i)
		}
	}
	if br.Pack != taskpack.BuiltinName {
		t.Errorf("batch response pack %q, want %q", br.Pack, taskpack.BuiltinName)
	}
}

// TestPackMismatchIs409 pins the pack handshake: a session request naming a
// different pack (or the right pack at a different hash) is refused with 409
// and a PackMismatch body carrying both identities, before any model work.
// Requests that skip the handshake (empty pack fields) are unaffected.
func TestPackMismatchIs409(t *testing.T) {
	s := newBareServer(modelstore.New(), taskpack.Builtin(), 1, 1)

	post := func(req serveproto.SessionRequest) *httptest.ResponseRecorder {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/session", bytes.NewReader(body)))
		return rec
	}

	for _, req := range []serveproto.SessionRequest{
		{Task: "word-replace", Setting: "D-M", Runs: 1, Pack: "custom", PackHash: taskpack.Builtin().Hash()},
		{Task: "word-replace", Setting: "D-M", Runs: 1, Pack: taskpack.BuiltinName, PackHash: "deadbeef"},
	} {
		rec := post(req)
		if rec.Code != http.StatusConflict {
			t.Fatalf("pack %q hash %q: status %d, want 409; body: %s",
				req.Pack, req.PackHash, rec.Code, rec.Body.String())
		}
		var mm serveproto.PackMismatch
		if err := json.Unmarshal(rec.Body.Bytes(), &mm); err != nil {
			t.Fatalf("409 body is not a PackMismatch: %v\n%s", err, rec.Body.String())
		}
		if mm.WantPack != req.Pack || mm.WantHash != req.PackHash {
			t.Errorf("want side not echoed: %+v", mm)
		}
		if mm.HavePack != taskpack.BuiltinName || mm.HaveHash != taskpack.Builtin().Hash() {
			t.Errorf("have side wrong: %+v", mm)
		}
	}

	// A matching handshake must pass the gate (and then fail later on the
	// bare server's empty model store — anything but 409 proves the gate
	// let it through).
	rec := post(serveproto.SessionRequest{
		Task: "word-replace", Setting: "D-M", Runs: 1,
		Pack: taskpack.BuiltinName, PackHash: taskpack.Builtin().Hash(),
	})
	if rec.Code == http.StatusConflict {
		t.Errorf("matching pack handshake was refused: %s", rec.Body.String())
	}
}

// TestServeUnknownAppPrewarm guards the daemon's error path without paying
// for a full prewarm: an unknown application through the same seam fails
// fast.
func TestServeUnknownAppPrewarm(t *testing.T) {
	if _, err := agent.ModelsFor(modelstore.New(), "Browser", 1); err == nil {
		t.Fatal("unknown app should fail the prewarm path")
	}
}
