// Command dmi-serve is the warm-model serving daemon: the online phase as
// a long-lived session service. At startup it pre-warms the application
// catalog through a budgeted model store (per-model cost = encoded snapshot
// bytes, LRU eviction beyond the budget, snapshot files surviving eviction
// so reloads spend zero rip clicks), then serves agent sessions over
// HTTP/JSON from the same worker-pool seam the in-process benchmark uses —
// responses are byte-identical to bench.Run for the same grid cell, which
// is what lets a dmi-coord coordinator shard the evaluation grid across N
// replicas and still aggregate a byte-identical report.
//
// Usage:
//
//	dmi-serve [-addr host:port] [-budget BYTES] [-snapshot DIR] [-snapshot-format binary|json]
//	          [-workers N] [-parallel N] [-taskpack FILE] [-pprof host:port]
//
// -taskpack serves a task-pack file (see internal/taskpack) instead of the
// compiled-in grid. Requests that name a different pack are answered 409.
// -pprof serves net/http/pprof profiles on a second listener (never on the
// serving address). -snapshot-format selects the snapshot encoding the
// store writes (compact binary by default; json is the debug form).
//
// Endpoints (wire types in internal/serveproto, protocol v1):
//
//	POST /v1/session  {"app","task","setting","runs"[,"pack","pack_hash"]} → the cell's outcomes
//	POST /v1/cells    {"cells":[...]} → per-cell results, one HTTP call for a whole batch
//	POST /v1/rip      {"app","context","frames":[...]} → per-frame differential captures,
//	                  the worker half of a distributed rip (coordinator: dmi-model -replicas)
//	GET  /v1/stats    store counters (hits, misses, snapshot loads, evictions,
//	                  resident bytes) plus serving totals and warm-hit ratio
//	GET  /v1/healthz  readiness (the catalog prewarm completed) + served pack identity
//
// The pre-v1 unversioned routes (/session, /stats, /healthz) remain as
// aliases for one release; /v1/cells is v1-only.
//
// On SIGINT or SIGTERM the daemon stops accepting connections, drains
// in-flight sessions, and exits 0 — the clean-stop contract the
// coordinator's failure handling is tested against.
package main

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof: registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/agent"
	"repro/internal/bench"
	"repro/internal/modelstore"
	"repro/internal/serveproto"
	"repro/internal/taskpack"
)

// errUsage marks a flag-parse failure the FlagSet has already reported to
// stderr; main must not print it again.
var errUsage = errors.New("invalid usage")

// Server hardening limits. Request bodies are tiny (serveproto caps them at
// 64 KiB), so the read side is tight; the write side must outlast the
// slowest legitimate session — a 100-run cell on a cold model — so it is a
// hang guard, not a latency bound.
const (
	readTimeout       = 30 * time.Second
	readHeaderTimeout = 10 * time.Second
	writeTimeout      = 10 * time.Minute
	idleTimeout       = 2 * time.Minute
)

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the CLI against the given argument list and streams; main is
// a thin exit-code shim around it so tests can drive the binary in-process.
// Shutdown signals (SIGINT/SIGTERM) cancel the serve context.
func run(args []string, stdout, stderr io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, args, stdout, stderr)
}

// runCtx is run with an explicit lifetime: when ctx is cancelled the daemon
// stops listening, drains in-flight sessions, and returns nil. Tests drive
// graceful shutdown through this seam.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dmi-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8480", "listen address")
	budget := fs.Int64("budget", 0, "resident-model budget in encoded-snapshot bytes (0 = unlimited)")
	snapshot := fs.String("snapshot", "", "graph-snapshot directory (evicted models reload from here with zero rip clicks)")
	workers := fs.Int("workers", 0, "rip worker-pool size for offline builds (0 = auto)")
	// Request concurrency already comes from the HTTP server (one
	// goroutine per in-flight request); a per-request pool bigger than 1
	// multiplies that, so it is opt-in for large multi-run requests.
	parallel := fs.Int("parallel", 1, "per-request session worker-pool size for multi-run cells (1 = sequential, 0 = GOMAXPROCS)")
	packFile := fs.String("taskpack", "", "task-pack file to serve instead of the compiled-in grid")
	snapshotFormat := fs.String("snapshot-format", "binary", "snapshot encoding: binary (compact default) or json (debug)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage was printed, not an error
		}
		return errUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "dmi-serve: unexpected argument %q\n", fs.Arg(0))
		return errUsage
	}
	format, err := modelstore.ParseSnapshotFormat(*snapshotFormat)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return errUsage
	}
	reg, err := loadRegistry(*packFile)
	if err != nil {
		return fmt.Errorf("dmi-serve: %w", err)
	}
	if *pprofAddr != "" {
		// The profiler gets its own listener so profile scrapes never
		// contend with session traffic (and the serving port never exposes
		// /debug/pprof). net/http/pprof registered on the default mux.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("dmi-serve: pprof: %w", err)
		}
		defer pln.Close()
		go http.Serve(pln, nil)
		fmt.Fprintf(stderr, "dmi-serve: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}

	srv, err := newServer(reg, *budget, *snapshot, format, *workers, *parallel, stderr)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("dmi-serve: %w", err)
	}
	hs := &http.Server{
		Handler:           srv,
		ReadTimeout:       readTimeout,
		ReadHeaderTimeout: readHeaderTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	fmt.Fprintf(stderr, "dmi-serve: serving task pack %s (hash %.12s), listening on http://%s\n",
		srv.reg.Name(), srv.reg.Hash(), ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		// Serve never returns nil; without a shutdown this is a real
		// listener failure.
		return fmt.Errorf("dmi-serve: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(stderr, "dmi-serve: shutting down — draining in-flight sessions")
	// Sessions are bounded (serveproto.MaxRuns), but WriteTimeout bounds
	// only the connection's write deadline, not handler execution — so the
	// drain needs its own deadline, sized just over the slowest legitimate
	// session, or a wedged handler would keep a SIGTERMed replica alive
	// until SIGKILL. Hitting the deadline exits non-zero: a failed drain
	// must look like one.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), writeTimeout+30*time.Second)
	defer cancelDrain()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("dmi-serve: shutdown: %w", err)
	}
	// Usually http.ErrServerClosed — but a real accept-loop failure can
	// land in the same instant the signal does, and exiting 0 would mask
	// the crash behind a "clean drain".
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("dmi-serve: %w", err)
	}
	fmt.Fprintln(stderr, "dmi-serve: drained, exiting")
	return nil
}

// loadRegistry resolves the -taskpack flag: the compiled-in grid when empty,
// a strictly decoded and validated pack file otherwise.
func loadRegistry(path string) (*taskpack.Registry, error) {
	if path == "" {
		return taskpack.Builtin(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	reg, err := taskpack.Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reg, nil
}

// server is the daemon state: the budgeted store every session start goes
// through, the task registry cells resolve against, the session worker-pool
// size, and the serving counters.
type server struct {
	store      *modelstore.Store
	reg        *taskpack.Registry
	mux        *http.ServeMux
	ripWorkers int
	parallel   int
	instance   string         // random per-process id, reported on /healthz
	coreTokens map[string]int // catalog token accounting, for /stats
	rip        *ripPool       // warm instances for POST /v1/rip

	mu         sync.Mutex
	sessions   int64 // POST /session requests served
	runs       int64 // outcomes returned across those requests
	inFlight   int64 // POST /session requests currently executing
	expansions int64 // frames expanded for POST /v1/rip
}

// newServer builds the daemon and pre-warms the whole catalog through the
// budgeted store. Under a budget smaller than the catalog the prewarm
// itself evicts (AppNames order, LRU), which is intended: it populates the
// snapshot directory so later reloads are rip-free, and it leaves the most
// recently warmed models resident.
func newServer(reg *taskpack.Registry, budget int64, snapshotDir string, format modelstore.SnapshotFormat, ripWorkers, parallel int, progress io.Writer) (*server, error) {
	store := modelstore.NewBudgeted(snapshotDir, budget)
	store.SetSnapshotFormat(format)
	s := newBareServer(store, reg, ripWorkers, parallel)
	for _, app := range agent.AppNames() {
		m, err := agent.ModelsFor(s.store, app, ripWorkers)
		if err != nil {
			return nil, fmt.Errorf("dmi-serve: prewarm %s: %w", app, err)
		}
		s.coreTokens[app] = m.CoreTokens[app]
		fmt.Fprintf(progress, "dmi-serve: warmed %s (core topology ≈ %d tokens)\n", app, m.CoreTokens[app])
	}
	st := s.store.Stats()
	fmt.Fprintf(progress, "dmi-serve: prewarm done — %d resident models, %d bytes (budget %d), %d evictions\n",
		st.ResidentModels, st.ResidentBytes, budget, st.Evictions)
	return s, nil
}

// newBareServer wires the handler state without prewarming; request
// validation paths are testable through it without paying for a catalog
// build.
func newBareServer(store *modelstore.Store, reg *taskpack.Registry, ripWorkers, parallel int) *server {
	s := &server{
		store:      store,
		reg:        reg,
		ripWorkers: ripWorkers,
		parallel:   parallel,
		instance:   newInstanceID(),
		coreTokens: make(map[string]int),
		rip:        newRipPool(),
	}
	mux := http.NewServeMux()
	// Protocol v1 routes plus the pre-v1 unversioned aliases (kept for one
	// release so mixed fleets upgrade replica-by-replica). /v1/cells and
	// /v1/rip are v1-only — they never existed unversioned.
	mux.HandleFunc("/v1/session", s.handleSession)
	mux.HandleFunc("/v1/cells", s.handleBatch)
	mux.HandleFunc("/v1/rip", s.handleRip)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/session", s.handleSession)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux = mux
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *server) handleSession(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req serveproto.SessionRequest
	// A session request is a few short strings; refuse to buffer more. An
	// oversize body is the client's protocol violation, reported as 413.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, serveproto.MaxRequestBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", serveproto.MaxRequestBytes),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if s.rejectPackMismatch(w, req.Pack, req.PackHash) {
		return
	}
	resp, status, msg := s.runCellRequest(req)
	if resp == nil {
		http.Error(w, msg, status)
		return
	}
	writeJSON(w, *resp)
}

// handleBatch is POST /v1/cells: up to MaxBatchCells session requests in
// one HTTP call. The pack handshake is request-level (409 rejects the whole
// batch, same as a single session); everything past it is per-cell — each
// cell carries the status it would have gotten as its own POST /session, so
// one bad cell never poisons its batch-mates.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// The body cap scales with the declared batch size (clamped to
	// [1, MaxBatchCells]): a flat per-session cap would reject a full batch
	// of legitimate cells, an unconditional max-batch cap would let a
	// single-cell client post 64× what it should. The declared count is a
	// limit declaration, not trusted content — the decoded batch is
	// re-checked against MaxBatchCells below.
	declared, _ := strconv.Atoi(r.Header.Get(serveproto.BatchSizeHeader))
	limit := serveproto.BatchRequestBytes(declared)
	var req serveproto.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes (declare the batch size in %s)",
				limit, serveproto.BatchSizeHeader), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Cells) == 0 {
		http.Error(w, "batch has no cells", http.StatusBadRequest)
		return
	}
	if len(req.Cells) > serveproto.MaxBatchCells {
		http.Error(w, fmt.Sprintf("batch of %d cells exceeds the %d cap", len(req.Cells), serveproto.MaxBatchCells),
			http.StatusBadRequest)
		return
	}
	if s.rejectPackMismatch(w, req.Pack, req.PackHash) {
		return
	}
	results := make([]serveproto.BatchCellResult, len(req.Cells))
	for i, cell := range req.Cells {
		// Cell-level pack fields must agree with the batch-level handshake
		// already validated; a cell naming a different pack is its own
		// mismatch, not the batch's.
		if (cell.Pack != "" && cell.Pack != s.reg.Name()) ||
			(cell.PackHash != "" && cell.PackHash != s.reg.Hash()) {
			results[i] = serveproto.BatchCellResult{Status: http.StatusConflict, Error: "pack mismatch"}
			continue
		}
		resp, status, msg := s.runCellRequest(cell)
		if resp == nil {
			results[i] = serveproto.BatchCellResult{Status: status, Error: msg}
			continue
		}
		results[i] = serveproto.BatchCellResult{Status: http.StatusOK, Response: resp}
	}
	writeJSON(w, serveproto.BatchResponse{
		Pack:     s.reg.Name(),
		PackHash: s.reg.Hash(),
		Results:  results,
	})
}

// rejectPackMismatch runs the pack handshake: a request naming a different
// pack (or the same pack at a different content hash) must not run —
// outcomes are pure functions of the task content, so answering from a
// mismatched grid would corrupt the caller's whole report. 409 with both
// identities tells the operator exactly which side to restart.
func (s *server) rejectPackMismatch(w http.ResponseWriter, pack, packHash string) bool {
	if (pack == "" || pack == s.reg.Name()) && (packHash == "" || packHash == s.reg.Hash()) {
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusConflict)
	json.NewEncoder(w).Encode(serveproto.PackMismatch{
		WantPack: pack, WantHash: packHash,
		HavePack: s.reg.Name(), HaveHash: s.reg.Hash(),
	})
	return true
}

// runCellRequest validates and executes one session request — the shared
// core of POST /session and each cell of POST /v1/cells. On success the
// response is non-nil; otherwise status and msg carry the HTTP rejection.
// The pack handshake is the caller's, not runCellRequest's.
func (s *server) runCellRequest(req serveproto.SessionRequest) (*serveproto.SessionResponse, int, string) {
	runs := req.Runs
	if runs <= 0 {
		runs = 1
	}
	if runs > serveproto.MaxRuns {
		return nil, http.StatusBadRequest, fmt.Sprintf("runs %d exceeds the %d cap", runs, serveproto.MaxRuns)
	}
	set, task, err := bench.ResolveCellIn(s.reg, bench.Cell{App: req.App, Task: req.Task, Setting: req.Setting, Runs: runs})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, bench.ErrUnknownCell) {
			status = http.StatusNotFound
		}
		return nil, status, err.Error()
	}

	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inFlight--
		s.mu.Unlock()
	}()

	// Every session start routes through the budgeted store: a warm hit, a
	// zero-rip snapshot reload, or a fresh build, whatever the LRU state
	// dictates. The fetched view carries the same token accounting as the
	// full catalog build, so the cell outcomes are byte-identical to
	// bench.Run's.
	models, err := agent.ModelsFor(s.store, task.App, s.ripWorkers)
	if err != nil {
		return nil, http.StatusInternalServerError, fmt.Sprintf("model build failed: %v", err)
	}
	outcomes := bench.RunCell(models, set, task, runs, s.parallel)

	s.mu.Lock()
	s.sessions++
	s.runs += int64(len(outcomes))
	s.mu.Unlock()

	return &serveproto.SessionResponse{
		App:      task.App,
		Task:     task.ID,
		Setting:  set.Label,
		Runs:     runs,
		Pack:     s.reg.Name(),
		PackHash: s.reg.Hash(),
		Outcomes: outcomes,
	}, http.StatusOK, ""
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	st := s.store.Stats()
	s.mu.Lock()
	sessions, runs, inFlight, expansions := s.sessions, s.runs, s.inFlight, s.expansions
	s.mu.Unlock()
	writeJSON(w, serveproto.StatsResponse{
		Sessions:     sessions,
		Runs:         runs,
		InFlight:     inFlight,
		Expansions:   expansions,
		Store:        st,
		WarmHitRatio: serveproto.HitRatio(st),
		BudgetBytes:  s.store.Budget(),
		CoreTokens:   s.coreTokens,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	// The server only exists after the prewarm succeeded, so reachable
	// means ready.
	writeJSON(w, serveproto.Health{
		OK: true, Apps: len(agent.AppNames()),
		Proto: serveproto.ProtoV1,
		Pack:  s.reg.Name(), PackHash: s.reg.Hash(),
		Instance: s.instance,
	})
}

// newInstanceID draws a random per-process identity for /healthz, so a
// coordinator's health prober can tell a replica that blipped from one that
// was killed and restarted on the same address — the id changes on restart.
func newInstanceID() string {
	var buf [8]byte
	if _, err := cryptorand.Read(buf[:]); err != nil {
		return fmt.Sprintf("pid-%d", os.Getpid())
	}
	return hex.EncodeToString(buf[:])
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}
