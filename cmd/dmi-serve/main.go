// Command dmi-serve is the warm-model serving daemon: the online phase as
// a long-lived session service. At startup it pre-warms the application
// catalog through a budgeted model store (per-model cost = encoded snapshot
// bytes, LRU eviction beyond the budget, snapshot files surviving eviction
// so reloads spend zero rip clicks), then serves agent sessions over
// HTTP/JSON from the same worker-pool seam the in-process benchmark uses —
// responses are byte-identical to bench.Run for the same grid cell, which
// is what lets a dmi-coord coordinator shard the evaluation grid across N
// replicas and still aggregate a byte-identical report.
//
// Usage:
//
//	dmi-serve [-addr host:port] [-budget BYTES] [-snapshot DIR] [-workers N] [-parallel N] [-taskpack FILE]
//
// -taskpack serves a task-pack file (see internal/taskpack) instead of the
// compiled-in grid. Requests that name a different pack are answered 409.
//
// Endpoints (wire types in internal/serveproto):
//
//	POST /session  {"app","task","setting","runs"[,"pack","pack_hash"]} → the cell's outcomes
//	GET  /stats    store counters (hits, misses, snapshot loads, evictions,
//	               resident bytes) plus serving totals and warm-hit ratio
//	GET  /healthz  readiness (the catalog prewarm completed) + served pack identity
//
// On SIGINT or SIGTERM the daemon stops accepting connections, drains
// in-flight sessions, and exits 0 — the clean-stop contract the
// coordinator's failure handling is tested against.
package main

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/agent"
	"repro/internal/bench"
	"repro/internal/modelstore"
	"repro/internal/serveproto"
	"repro/internal/taskpack"
)

// errUsage marks a flag-parse failure the FlagSet has already reported to
// stderr; main must not print it again.
var errUsage = errors.New("invalid usage")

// Server hardening limits. Request bodies are tiny (serveproto caps them at
// 64 KiB), so the read side is tight; the write side must outlast the
// slowest legitimate session — a 100-run cell on a cold model — so it is a
// hang guard, not a latency bound.
const (
	readTimeout       = 30 * time.Second
	readHeaderTimeout = 10 * time.Second
	writeTimeout      = 10 * time.Minute
	idleTimeout       = 2 * time.Minute
)

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the CLI against the given argument list and streams; main is
// a thin exit-code shim around it so tests can drive the binary in-process.
// Shutdown signals (SIGINT/SIGTERM) cancel the serve context.
func run(args []string, stdout, stderr io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, args, stdout, stderr)
}

// runCtx is run with an explicit lifetime: when ctx is cancelled the daemon
// stops listening, drains in-flight sessions, and returns nil. Tests drive
// graceful shutdown through this seam.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dmi-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8480", "listen address")
	budget := fs.Int64("budget", 0, "resident-model budget in encoded-snapshot bytes (0 = unlimited)")
	snapshot := fs.String("snapshot", "", "graph-snapshot directory (evicted models reload from here with zero rip clicks)")
	workers := fs.Int("workers", 0, "rip worker-pool size for offline builds (0 = auto)")
	// Request concurrency already comes from the HTTP server (one
	// goroutine per in-flight request); a per-request pool bigger than 1
	// multiplies that, so it is opt-in for large multi-run requests.
	parallel := fs.Int("parallel", 1, "per-request session worker-pool size for multi-run cells (1 = sequential, 0 = GOMAXPROCS)")
	packFile := fs.String("taskpack", "", "task-pack file to serve instead of the compiled-in grid")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage was printed, not an error
		}
		return errUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "dmi-serve: unexpected argument %q\n", fs.Arg(0))
		return errUsage
	}
	reg, err := loadRegistry(*packFile)
	if err != nil {
		return fmt.Errorf("dmi-serve: %w", err)
	}

	srv, err := newServer(reg, *budget, *snapshot, *workers, *parallel, stderr)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("dmi-serve: %w", err)
	}
	hs := &http.Server{
		Handler:           srv,
		ReadTimeout:       readTimeout,
		ReadHeaderTimeout: readHeaderTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	fmt.Fprintf(stderr, "dmi-serve: serving task pack %s (hash %.12s), listening on http://%s\n",
		srv.reg.Name(), srv.reg.Hash(), ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		// Serve never returns nil; without a shutdown this is a real
		// listener failure.
		return fmt.Errorf("dmi-serve: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(stderr, "dmi-serve: shutting down — draining in-flight sessions")
	// Sessions are bounded (serveproto.MaxRuns), but WriteTimeout bounds
	// only the connection's write deadline, not handler execution — so the
	// drain needs its own deadline, sized just over the slowest legitimate
	// session, or a wedged handler would keep a SIGTERMed replica alive
	// until SIGKILL. Hitting the deadline exits non-zero: a failed drain
	// must look like one.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), writeTimeout+30*time.Second)
	defer cancelDrain()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("dmi-serve: shutdown: %w", err)
	}
	// Usually http.ErrServerClosed — but a real accept-loop failure can
	// land in the same instant the signal does, and exiting 0 would mask
	// the crash behind a "clean drain".
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("dmi-serve: %w", err)
	}
	fmt.Fprintln(stderr, "dmi-serve: drained, exiting")
	return nil
}

// loadRegistry resolves the -taskpack flag: the compiled-in grid when empty,
// a strictly decoded and validated pack file otherwise.
func loadRegistry(path string) (*taskpack.Registry, error) {
	if path == "" {
		return taskpack.Builtin(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	reg, err := taskpack.Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reg, nil
}

// server is the daemon state: the budgeted store every session start goes
// through, the task registry cells resolve against, the session worker-pool
// size, and the serving counters.
type server struct {
	store      *modelstore.Store
	reg        *taskpack.Registry
	mux        *http.ServeMux
	ripWorkers int
	parallel   int
	instance   string         // random per-process id, reported on /healthz
	coreTokens map[string]int // catalog token accounting, for /stats

	mu       sync.Mutex
	sessions int64 // POST /session requests served
	runs     int64 // outcomes returned across those requests
	inFlight int64 // POST /session requests currently executing
}

// newServer builds the daemon and pre-warms the whole catalog through the
// budgeted store. Under a budget smaller than the catalog the prewarm
// itself evicts (AppNames order, LRU), which is intended: it populates the
// snapshot directory so later reloads are rip-free, and it leaves the most
// recently warmed models resident.
func newServer(reg *taskpack.Registry, budget int64, snapshotDir string, ripWorkers, parallel int, progress io.Writer) (*server, error) {
	s := newBareServer(modelstore.NewBudgeted(snapshotDir, budget), reg, ripWorkers, parallel)
	for _, app := range agent.AppNames() {
		m, err := agent.ModelsFor(s.store, app, ripWorkers)
		if err != nil {
			return nil, fmt.Errorf("dmi-serve: prewarm %s: %w", app, err)
		}
		s.coreTokens[app] = m.CoreTokens[app]
		fmt.Fprintf(progress, "dmi-serve: warmed %s (core topology ≈ %d tokens)\n", app, m.CoreTokens[app])
	}
	st := s.store.Stats()
	fmt.Fprintf(progress, "dmi-serve: prewarm done — %d resident models, %d bytes (budget %d), %d evictions\n",
		st.ResidentModels, st.ResidentBytes, budget, st.Evictions)
	return s, nil
}

// newBareServer wires the handler state without prewarming; request
// validation paths are testable through it without paying for a catalog
// build.
func newBareServer(store *modelstore.Store, reg *taskpack.Registry, ripWorkers, parallel int) *server {
	s := &server{
		store:      store,
		reg:        reg,
		ripWorkers: ripWorkers,
		parallel:   parallel,
		instance:   newInstanceID(),
		coreTokens: make(map[string]int),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/session", s.handleSession)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux = mux
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *server) handleSession(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req serveproto.SessionRequest
	// A session request is a few short strings; refuse to buffer more. An
	// oversize body is the client's protocol violation, reported as 413.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, serveproto.MaxRequestBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", serveproto.MaxRequestBytes),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	runs := req.Runs
	if runs <= 0 {
		runs = 1
	}
	if runs > serveproto.MaxRuns {
		http.Error(w, fmt.Sprintf("runs %d exceeds the %d cap", runs, serveproto.MaxRuns), http.StatusBadRequest)
		return
	}
	// Pack handshake: a request naming a different pack (or the same pack at
	// a different content hash) must not run — outcomes are pure functions
	// of the task content, so answering from a mismatched grid would corrupt
	// the caller's whole report. 409 with both identities tells the operator
	// exactly which side to restart.
	if (req.Pack != "" && req.Pack != s.reg.Name()) ||
		(req.PackHash != "" && req.PackHash != s.reg.Hash()) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(serveproto.PackMismatch{
			WantPack: req.Pack, WantHash: req.PackHash,
			HavePack: s.reg.Name(), HaveHash: s.reg.Hash(),
		})
		return
	}
	set, task, err := bench.ResolveCellIn(s.reg, bench.Cell{App: req.App, Task: req.Task, Setting: req.Setting, Runs: runs})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, bench.ErrUnknownCell) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}

	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inFlight--
		s.mu.Unlock()
	}()

	// Every session start routes through the budgeted store: a warm hit, a
	// zero-rip snapshot reload, or a fresh build, whatever the LRU state
	// dictates. The fetched view carries the same token accounting as the
	// full catalog build, so the cell outcomes are byte-identical to
	// bench.Run's.
	models, err := agent.ModelsFor(s.store, task.App, s.ripWorkers)
	if err != nil {
		http.Error(w, fmt.Sprintf("model build failed: %v", err), http.StatusInternalServerError)
		return
	}
	outcomes := bench.RunCell(models, set, task, runs, s.parallel)

	s.mu.Lock()
	s.sessions++
	s.runs += int64(len(outcomes))
	s.mu.Unlock()

	writeJSON(w, serveproto.SessionResponse{
		App:      task.App,
		Task:     task.ID,
		Setting:  set.Label,
		Runs:     runs,
		Pack:     s.reg.Name(),
		PackHash: s.reg.Hash(),
		Outcomes: outcomes,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	st := s.store.Stats()
	s.mu.Lock()
	sessions, runs, inFlight := s.sessions, s.runs, s.inFlight
	s.mu.Unlock()
	writeJSON(w, serveproto.StatsResponse{
		Sessions:     sessions,
		Runs:         runs,
		InFlight:     inFlight,
		Store:        st,
		WarmHitRatio: serveproto.HitRatio(st),
		BudgetBytes:  s.store.Budget(),
		CoreTokens:   s.coreTokens,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	// The server only exists after the prewarm succeeded, so reachable
	// means ready.
	writeJSON(w, serveproto.Health{
		OK: true, Apps: len(agent.AppNames()),
		Pack: s.reg.Name(), PackHash: s.reg.Hash(),
		Instance: s.instance,
	})
}

// newInstanceID draws a random per-process identity for /healthz, so a
// coordinator's health prober can tell a replica that blipped from one that
// was killed and restarted on the same address — the id changes on restart.
func newInstanceID() string {
	var buf [8]byte
	if _, err := cryptorand.Read(buf[:]); err != nil {
		return fmt.Sprintf("pid-%d", os.Getpid())
	}
	return hex.EncodeToString(buf[:])
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}
