// Command dmi-serve is the warm-model serving daemon: the online phase as
// a long-lived session service. At startup it pre-warms the application
// catalog through a budgeted model store (per-model cost = encoded snapshot
// bytes, LRU eviction beyond the budget, snapshot files surviving eviction
// so reloads spend zero rip clicks), then serves agent sessions over
// HTTP/JSON from the same worker-pool seam the in-process benchmark uses —
// responses are byte-identical to bench.Run for the same grid cell.
//
// Usage:
//
//	dmi-serve [-addr host:port] [-budget BYTES] [-snapshot DIR] [-workers N] [-parallel N]
//
// Endpoints:
//
//	POST /session  {"app","task","setting","runs"} → the cell's outcomes
//	GET  /stats    store counters (hits, misses, snapshot loads, evictions,
//	               resident bytes) plus serving totals and warm-hit ratio
//	GET  /healthz  readiness (the catalog prewarm completed)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"

	"repro/internal/agent"
	"repro/internal/bench"
	"repro/internal/modelstore"
	"repro/internal/osworld"
)

// errUsage marks a flag-parse failure the FlagSet has already reported to
// stderr; main must not print it again.
var errUsage = errors.New("invalid usage")

// maxRuns bounds one request's repetitions so a typo cannot park a worker
// pool on a single cell indefinitely.
const maxRuns = 100

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the CLI against the given argument list and streams; main is
// a thin exit-code shim around it so tests can drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dmi-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8480", "listen address")
	budget := fs.Int64("budget", 0, "resident-model budget in encoded-snapshot bytes (0 = unlimited)")
	snapshot := fs.String("snapshot", "", "graph-snapshot directory (evicted models reload from here with zero rip clicks)")
	workers := fs.Int("workers", 0, "rip worker-pool size for offline builds (0 = auto)")
	// Request concurrency already comes from the HTTP server (one
	// goroutine per in-flight request); a per-request pool bigger than 1
	// multiplies that, so it is opt-in for large multi-run requests.
	parallel := fs.Int("parallel", 1, "per-request session worker-pool size for multi-run cells (1 = sequential, 0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage was printed, not an error
		}
		return errUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "dmi-serve: unexpected argument %q\n", fs.Arg(0))
		return errUsage
	}

	srv, err := newServer(*budget, *snapshot, *workers, *parallel, stderr)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("dmi-serve: %w", err)
	}
	fmt.Fprintf(stderr, "dmi-serve: listening on http://%s\n", ln.Addr())
	return http.Serve(ln, srv)
}

// server is the daemon state: the budgeted store every session start goes
// through, the session worker-pool size, and the serving counters.
type server struct {
	store      *modelstore.Store
	mux        *http.ServeMux
	ripWorkers int
	parallel   int
	coreTokens map[string]int // catalog token accounting, for /stats

	mu       sync.Mutex
	sessions int64 // POST /session requests served
	runs     int64 // outcomes returned across those requests
}

// newServer builds the daemon and pre-warms the whole catalog through the
// budgeted store. Under a budget smaller than the catalog the prewarm
// itself evicts (AppNames order, LRU), which is intended: it populates the
// snapshot directory so later reloads are rip-free, and it leaves the most
// recently warmed models resident.
func newServer(budget int64, snapshotDir string, ripWorkers, parallel int, progress io.Writer) (*server, error) {
	s := &server{
		store:      modelstore.NewBudgeted(snapshotDir, budget),
		ripWorkers: ripWorkers,
		parallel:   parallel,
		coreTokens: make(map[string]int),
	}
	for _, app := range agent.AppNames() {
		m, err := agent.ModelsFor(s.store, app, ripWorkers)
		if err != nil {
			return nil, fmt.Errorf("dmi-serve: prewarm %s: %w", app, err)
		}
		s.coreTokens[app] = m.CoreTokens[app]
		fmt.Fprintf(progress, "dmi-serve: warmed %s (core topology ≈ %d tokens)\n", app, m.CoreTokens[app])
	}
	st := s.store.Stats()
	fmt.Fprintf(progress, "dmi-serve: prewarm done — %d resident models, %d bytes (budget %d), %d evictions\n",
		st.ResidentModels, st.ResidentBytes, budget, st.Evictions)

	mux := http.NewServeMux()
	mux.HandleFunc("/session", s.handleSession)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux = mux
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// sessionRequest selects one grid cell: the task (which implies the app),
// the matrix setting by its Table 3 label, and the repetition count.
type sessionRequest struct {
	App     string `json:"app"`
	Task    string `json:"task"`
	Setting string `json:"setting"`
	Runs    int    `json:"runs"`
}

type sessionResponse struct {
	App      string          `json:"app"`
	Task     string          `json:"task"`
	Setting  string          `json:"setting"`
	Runs     int             `json:"runs"`
	Outcomes []agent.Outcome `json:"outcomes"`
}

func (s *server) handleSession(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req sessionRequest
	// A session request is a few short strings; refuse to buffer more.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	task, ok := osworld.ByID(req.Task)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown task %q", req.Task), http.StatusNotFound)
		return
	}
	if req.App != "" && req.App != task.App {
		http.Error(w, fmt.Sprintf("task %q belongs to %q, not %q", req.Task, task.App, req.App),
			http.StatusBadRequest)
		return
	}
	set, ok := bench.SettingByLabel(req.Setting)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown setting %q", req.Setting), http.StatusNotFound)
		return
	}
	runs := req.Runs
	if runs <= 0 {
		runs = 1
	}
	if runs > maxRuns {
		http.Error(w, fmt.Sprintf("runs %d exceeds the %d cap", runs, maxRuns), http.StatusBadRequest)
		return
	}

	// Every session start routes through the budgeted store: a warm hit, a
	// zero-rip snapshot reload, or a fresh build, whatever the LRU state
	// dictates. The fetched view carries the same token accounting as the
	// full catalog build, so the cell outcomes are byte-identical to
	// bench.Run's.
	models, err := agent.ModelsFor(s.store, task.App, s.ripWorkers)
	if err != nil {
		http.Error(w, fmt.Sprintf("model build failed: %v", err), http.StatusInternalServerError)
		return
	}
	outcomes := bench.RunCell(models, set, task, runs, s.parallel)

	s.mu.Lock()
	s.sessions++
	s.runs += int64(len(outcomes))
	s.mu.Unlock()

	writeJSON(w, sessionResponse{
		App:      task.App,
		Task:     task.ID,
		Setting:  set.Label,
		Runs:     runs,
		Outcomes: outcomes,
	})
}

type statsResponse struct {
	Sessions     int64            `json:"sessions"`
	Runs         int64            `json:"runs"`
	Store        modelstore.Stats `json:"store"`
	WarmHitRatio float64          `json:"warm_hit_ratio"`
	BudgetBytes  int64            `json:"budget_bytes"`
	CoreTokens   map[string]int   `json:"core_tokens"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	st := s.store.Stats()
	s.mu.Lock()
	sessions, runs := s.sessions, s.runs
	s.mu.Unlock()
	writeJSON(w, statsResponse{
		Sessions:     sessions,
		Runs:         runs,
		Store:        st,
		WarmHitRatio: warmHitRatio(st),
		BudgetBytes:  s.store.Budget(),
		CoreTokens:   s.coreTokens,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	// The server only exists after the prewarm succeeded, so reachable
	// means ready.
	writeJSON(w, map[string]any{"ok": true, "apps": len(agent.AppNames())})
}

// warmHitRatio is the fraction of store lookups served without a build.
func warmHitRatio(st modelstore.Stats) float64 {
	if st.Hits+st.Misses == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}
