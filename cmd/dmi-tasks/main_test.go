package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/llm"
	"repro/internal/osworld"
)

func TestListPrintsEveryTask(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	got := out.String()
	for _, task := range osworld.All() {
		if !strings.Contains(got, task.ID) {
			t.Errorf("listing missing task %q", task.ID)
		}
	}
	for _, header := range []string{"id", "app", "plan steps", "description"} {
		if !strings.Contains(got, header) {
			t.Errorf("listing missing header %q", header)
		}
	}
}

func TestNoArgsIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Fatal("expected an error with neither -list nor -run")
	}
}

func TestUnknownTaskIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-run", "no-such-task"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "no-such-task") {
		t.Fatalf("expected unknown-task error, got %v", err)
	}
}

func TestBadFlagIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out, &errb); err == nil {
		t.Fatal("expected a flag-parse error")
	}
}

func TestRunTaskVerbose(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog modeling")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-run", "files-delete", "-runs", "2"}, &out, &errb); err != nil {
		t.Fatalf("run -run files-delete: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"task files-delete (Files):",
		"config: GUI+DMI, GPT-5/Medium, 2 run(s)",
		"run 1:", "run 2:", "success rate:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(errb.String(), "modeling applications…") {
		t.Error("progress line missing from stderr")
	}
	// The verbose outcome lines must agree with a direct agent.Run with the
	// same seeds.
	task, _ := osworld.ByID("files-delete")
	cfg := agent.Config{Interface: agent.GUIDMI, Profile: llm.GPT5Medium}
	models, err := agent.BuildModels()
	if err != nil {
		t.Fatal(err)
	}
	direct := agent.Run(models, task, cfg, llm.Rand("dmi-tasks", task.ID, 0))
	wantStatus := "FAIL"
	if direct.Success {
		wantStatus = "ok"
	}
	if !strings.Contains(got, "run 1: "+wantStatus) {
		t.Errorf("run 1 status disagrees with direct execution (%v):\n%s", direct.Success, got)
	}
}

func TestHelpFlagIsNotAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h should print usage and succeed, got %v", err)
	}
	if !strings.Contains(errb.String(), "Usage") {
		t.Errorf("usage text missing from stderr:\n%s", errb.String())
	}
}
