package main

import (
	"bytes"
	"strings"
	"testing"

	"os"
	"path/filepath"

	"repro/internal/agent"
	"repro/internal/llm"
	"repro/internal/osworld"
	"repro/internal/taskpack"
)

func TestListPrintsEveryTask(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	got := out.String()
	for _, task := range osworld.All() {
		if !strings.Contains(got, task.ID) {
			t.Errorf("listing missing task %q", task.ID)
		}
	}
	for _, header := range []string{"id", "app", "plan steps", "ambiguity", "traps", "description"} {
		if !strings.Contains(got, header) {
			t.Errorf("listing missing header %q", header)
		}
	}
}

// TestExportRoundTrip pins the authoring loop: -export writes a pack that
// -validate accepts, -list resolves, and whose bytes are the canonical
// encoding of the built-in grid (what CI diffs against packs/osworld-w.json).
func TestExportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pack.json")
	var out, errb bytes.Buffer
	if err := run([]string{"-export", path}, &out, &errb); err != nil {
		t.Fatalf("run -export: %v", err)
	}
	if !strings.Contains(errb.String(), "wrote pack "+taskpack.BuiltinName) {
		t.Errorf("export progress line missing:\n%s", errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := taskpack.BuiltinPack()
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Error("-export bytes differ from the canonical built-in encoding")
	}

	// Stdout mode emits the same bytes.
	out.Reset()
	if err := run([]string{"-export", "-"}, &out, &errb); err != nil {
		t.Fatalf("run -export -: %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Error("-export - bytes differ from the file export")
	}

	out.Reset()
	if err := run([]string{"-validate", path}, &out, &errb); err != nil {
		t.Fatalf("-validate rejected the exported pack: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), ": ok") {
		t.Errorf("validate success line missing:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-list", "-taskpack", path}, &out, &errb); err != nil {
		t.Fatalf("-list -taskpack: %v", err)
	}
	for _, task := range osworld.All() {
		if !strings.Contains(out.String(), task.ID) {
			t.Errorf("pack-backed listing missing task %q", task.ID)
		}
	}
}

// TestValidateReportsIssues drives -validate against a broken pack: every
// finding is printed with its line and the exit is an error naming the count.
func TestValidateReportsIssues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.json")
	pack := `{
  "schema": 1,
  "name": "broken",
  "tasks": [
    {
      "id": "bad-app",
      "app": "Browser",
      "description": "d",
      "verify": {"op": "answer"},
      "plan": [{"kind": "shortcut", "key": "ENTER"}]
    },
    {
      "id": "bad-path",
      "app": "Word",
      "description": "d",
      "verify": {"op": "equals", "path": "no.such.path", "value": true},
      "plan": [{"kind": "shortcut", "key": "ENTER"}]
    }
  ]
}
`
	if err := os.WriteFile(path, []byte(pack), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	err := run([]string{"-validate", path}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "2 issues") {
		t.Fatalf("want 2-issue validation failure, got %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "task bad-app") || !strings.Contains(got, `"Browser"`) {
		t.Errorf("unknown-app finding missing:\n%s", got)
	}
	if !strings.Contains(got, "task bad-path") {
		t.Errorf("bad-path finding missing:\n%s", got)
	}
	if !strings.Contains(got, "line 6") || !strings.Contains(got, "line 13") {
		t.Errorf("findings are not line-precise:\n%s", got)
	}

	if err := run([]string{"-validate", filepath.Join(t.TempDir(), "absent.json")}, &out, &errb); err == nil {
		t.Error("validating a missing file should fail")
	}
}

// TestRunWithPackMatchesBuiltin pins pack-loaded execution to the compiled
// grid: the same task from an exported pack produces the identical verbose
// transcript (same seeds, same outcomes).
func TestRunWithPackMatchesBuiltin(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog modeling")
	}
	path := filepath.Join(t.TempDir(), "pack.json")
	var out, errb bytes.Buffer
	if err := run([]string{"-export", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	var builtin, packed bytes.Buffer
	if err := run([]string{"-run", "files-delete", "-runs", "2"}, &builtin, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "files-delete", "-runs", "2", "-taskpack", path}, &packed, &errb); err != nil {
		t.Fatal(err)
	}
	if builtin.String() != packed.String() {
		t.Errorf("pack-loaded run diverges from builtin:\n--- builtin ---\n%s--- pack ---\n%s",
			builtin.String(), packed.String())
	}
}

func TestNoArgsIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Fatal("expected an error with neither -list nor -run")
	}
}

func TestUnknownTaskIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-run", "no-such-task"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "no-such-task") {
		t.Fatalf("expected unknown-task error, got %v", err)
	}
}

func TestBadFlagIsAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out, &errb); err == nil {
		t.Fatal("expected a flag-parse error")
	}
}

func TestRunTaskVerbose(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog modeling")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-run", "files-delete", "-runs", "2"}, &out, &errb); err != nil {
		t.Fatalf("run -run files-delete: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"task files-delete (Files):",
		"config: GUI+DMI, GPT-5/Medium, 2 run(s)",
		"run 1:", "run 2:", "success rate:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(errb.String(), "modeling applications…") {
		t.Error("progress line missing from stderr")
	}
	// The verbose outcome lines must agree with a direct agent.Run with the
	// same seeds.
	task, _ := osworld.ByID("files-delete")
	cfg := agent.Config{Interface: agent.GUIDMI, Profile: llm.GPT5Medium}
	models, err := agent.BuildModels()
	if err != nil {
		t.Fatal(err)
	}
	direct := agent.Run(models, task, cfg, llm.Rand("dmi-tasks", task.ID, 0))
	wantStatus := "FAIL"
	if direct.Success {
		wantStatus = "ok"
	}
	if !strings.Contains(got, "run 1: "+wantStatus) {
		t.Errorf("run 1 status disagrees with direct execution (%v):\n%s", direct.Success, got)
	}
}

func TestHelpFlagIsNotAnError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h should print usage and succeed, got %v", err)
	}
	if !strings.Contains(errb.String(), "Usage") {
		t.Errorf("usage text missing from stderr:\n%s", errb.String())
	}
}
