// Command dmi-tasks lists the benchmark tasks and runs individual ones
// verbosely — the debugging companion to cmd/dmi-bench.
//
// Usage:
//
//	dmi-tasks -list
//	dmi-tasks -run ppt-background [-iface dmi|gui|forest] [-model medium|minimal|mini] [-runs 3]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/agent"
	"repro/internal/llm"
	"repro/internal/osworld"
)

// errUsage marks a flag-parse failure the FlagSet has already reported to
// stderr; main must not print it again.
var errUsage = errors.New("invalid usage")

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the CLI against the given argument list and streams; main is
// a thin exit-code shim around it so tests can drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dmi-tasks", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list all benchmark tasks")
	runID := fs.String("run", "", "task id to run")
	iface := fs.String("iface", "dmi", "interface: dmi, gui, forest")
	model := fs.String("model", "medium", "model: medium, minimal, mini")
	runs := fs.Int("runs", 3, "seeded repetitions")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage was printed, not an error
		}
		return errUsage
	}

	if *list {
		tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "id\tapp\tplan steps\tdescription")
		for _, t := range osworld.All() {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%s\n", t.ID, t.App, len(t.Plan), t.Description)
		}
		return tw.Flush()
	}
	if *runID == "" {
		fmt.Fprintln(stderr, "one of -list or -run is required")
		fs.Usage()
		return errUsage // usage error: same exit class as a bad flag
	}

	task, ok := osworld.ByID(*runID)
	if !ok {
		return fmt.Errorf("unknown task %q (use -list)", *runID)
	}
	cfg := agent.Config{Interface: interfaceOf(*iface), Profile: profileOf(*model)}

	fmt.Fprintln(stderr, "modeling applications…")
	models, err := agent.BuildModels()
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "task %s (%s): %s\n", task.ID, task.App, task.Description)
	fmt.Fprintf(stdout, "config: %s, %s/%s, %d run(s)\n\n",
		cfg.Interface, cfg.Profile.Name, cfg.Profile.Reasoning, *runs)
	wins := 0
	for r := 0; r < *runs; r++ {
		out := agent.Run(models, task, cfg, llm.Rand("dmi-tasks", task.ID, r))
		status := "FAIL"
		if out.Success {
			status = "ok"
			wins++
		}
		fmt.Fprintf(stdout, "run %d: %-4s steps=%d (core %d, one-shot %v) time=%s tokens=%d",
			r+1, status, out.Steps, out.CoreSteps, out.OneShot,
			out.Time.Round(1e9), out.Prompt+out.Completed)
		if out.Failure != "" {
			fmt.Fprintf(stdout, " failure=%s", out.Failure)
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "\nsuccess rate: %d/%d\n", wins, *runs)
	return nil
}

func interfaceOf(s string) agent.Interface {
	switch s {
	case "gui":
		return agent.GUIOnly
	case "forest":
		return agent.GUIForest
	default:
		return agent.GUIDMI
	}
}

func profileOf(s string) llm.Profile {
	switch s {
	case "minimal":
		return llm.GPT5Minimal
	case "mini":
		return llm.GPT5Mini
	default:
		return llm.GPT5Medium
	}
}
