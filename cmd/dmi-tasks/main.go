// Command dmi-tasks lists the benchmark tasks and runs individual ones
// verbosely — the debugging companion to cmd/dmi-bench.
//
// Usage:
//
//	dmi-tasks -list
//	dmi-tasks -run ppt-background [-iface dmi|gui|forest] [-model medium|minimal|mini] [-runs 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/agent"
	"repro/internal/llm"
	"repro/internal/osworld"
)

func main() {
	list := flag.Bool("list", false, "list all benchmark tasks")
	run := flag.String("run", "", "task id to run")
	iface := flag.String("iface", "dmi", "interface: dmi, gui, forest")
	model := flag.String("model", "medium", "model: medium, minimal, mini")
	runs := flag.Int("runs", 3, "seeded repetitions")
	flag.Parse()

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "id\tapp\tplan steps\tdescription")
		for _, t := range osworld.All() {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%s\n", t.ID, t.App, len(t.Plan), t.Description)
		}
		tw.Flush()
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}

	task, ok := osworld.ByID(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown task %q (use -list)\n", *run)
		os.Exit(1)
	}
	cfg := agent.Config{Interface: interfaceOf(*iface), Profile: profileOf(*model)}

	fmt.Fprintln(os.Stderr, "modeling applications…")
	models, err := agent.BuildModels()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("task %s (%s): %s\n", task.ID, task.App, task.Description)
	fmt.Printf("config: %s, %s/%s, %d run(s)\n\n",
		cfg.Interface, cfg.Profile.Name, cfg.Profile.Reasoning, *runs)
	wins := 0
	for r := 0; r < *runs; r++ {
		out := agent.Run(models, task, cfg, llm.Rand("dmi-tasks", task.ID, r))
		status := "FAIL"
		if out.Success {
			status = "ok"
			wins++
		}
		fmt.Printf("run %d: %-4s steps=%d (core %d, one-shot %v) time=%s tokens=%d",
			r+1, status, out.Steps, out.CoreSteps, out.OneShot,
			out.Time.Round(1e9), out.Prompt+out.Completed)
		if out.Failure != "" {
			fmt.Printf(" failure=%s", out.Failure)
		}
		fmt.Println()
	}
	fmt.Printf("\nsuccess rate: %d/%d\n", wins, *runs)
}

func interfaceOf(s string) agent.Interface {
	switch s {
	case "gui":
		return agent.GUIOnly
	case "forest":
		return agent.GUIForest
	default:
		return agent.GUIDMI
	}
}

func profileOf(s string) llm.Profile {
	switch s {
	case "minimal":
		return llm.GPT5Minimal
	case "mini":
		return llm.GPT5Mini
	default:
		return llm.GPT5Medium
	}
}
