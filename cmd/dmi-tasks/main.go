// Command dmi-tasks lists the benchmark tasks, runs individual ones
// verbosely, and is the authoring tool for task packs: it exports the
// built-in grid as a canonical pack file and validates hand-written packs
// with line-precise findings — the debugging companion to cmd/dmi-bench.
//
// Usage:
//
//	dmi-tasks -list [-taskpack FILE]
//	dmi-tasks -run ppt-background [-taskpack FILE] [-iface dmi|gui|forest] [-model medium|minimal|mini] [-runs 3]
//	dmi-tasks -export FILE   ("-" writes to stdout)
//	dmi-tasks -validate FILE
//
// -export re-emits the compiled-in osworld-w grid in the canonical pack
// encoding (the committed packs/osworld-w.json is exactly this output).
// -validate decodes and semantically checks a pack, printing every finding
// with the line the offending task sits on, and exits non-zero when any
// finding exists.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/agent"
	"repro/internal/llm"
	"repro/internal/osworld"
	"repro/internal/taskpack"
)

// errUsage marks a flag-parse failure the FlagSet has already reported to
// stderr; main must not print it again.
var errUsage = errors.New("invalid usage")

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the CLI against the given argument list and streams; main is
// a thin exit-code shim around it so tests can drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dmi-tasks", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list all benchmark tasks")
	runID := fs.String("run", "", "task id to run")
	export := fs.String("export", "", "write the built-in grid as a canonical task pack to this file (\"-\" = stdout)")
	validate := fs.String("validate", "", "validate a task pack file and report every finding")
	packFile := fs.String("taskpack", "", "task pack JSON for -list/-run (default: the built-in osworld-w grid)")
	iface := fs.String("iface", "dmi", "interface: dmi, gui, forest")
	model := fs.String("model", "medium", "model: medium, minimal, mini")
	runs := fs.Int("runs", 3, "seeded repetitions")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage was printed, not an error
		}
		return errUsage
	}

	if *export != "" {
		return exportPack(*export, stdout, stderr)
	}
	if *validate != "" {
		return validatePack(*validate, stdout)
	}

	reg, err := loadRegistry(*packFile)
	if err != nil {
		return fmt.Errorf("dmi-tasks: %w", err)
	}

	if *list {
		tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "id\tapp\tplan steps\tambiguity\ttraps\tdescription")
		for _, t := range reg.Tasks() {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%d\t%s\n",
				t.ID, t.App, len(t.Plan), t.Ambiguity, trapCount(t), t.Description)
		}
		return tw.Flush()
	}
	if *runID == "" {
		fmt.Fprintln(stderr, "one of -list, -run, -export, or -validate is required")
		fs.Usage()
		return errUsage // usage error: same exit class as a bad flag
	}

	task, ok := reg.ByID(*runID)
	if !ok {
		return fmt.Errorf("unknown task %q (use -list)", *runID)
	}
	cfg := agent.Config{Interface: interfaceOf(*iface), Profile: profileOf(*model)}

	fmt.Fprintln(stderr, "modeling applications…")
	models, err := agent.BuildModels()
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "task %s (%s): %s\n", task.ID, task.App, task.Description)
	fmt.Fprintf(stdout, "config: %s, %s/%s, %d run(s)\n\n",
		cfg.Interface, cfg.Profile.Name, cfg.Profile.Reasoning, *runs)
	wins := 0
	for r := 0; r < *runs; r++ {
		out := agent.Run(models, task, cfg, llm.Rand("dmi-tasks", task.ID, r))
		status := "FAIL"
		if out.Success {
			status = "ok"
			wins++
		}
		fmt.Fprintf(stdout, "run %d: %-4s steps=%d (core %d, one-shot %v) time=%s tokens=%d",
			r+1, status, out.Steps, out.CoreSteps, out.OneShot,
			out.Time.Round(1e9), out.Prompt+out.Completed)
		if out.Failure != "" {
			fmt.Fprintf(stdout, " failure=%s", out.Failure)
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "\nsuccess rate: %d/%d\n", wins, *runs)
	return nil
}

// exportPack writes the built-in grid in the canonical pack encoding — the
// byte-exact content of the committed packs/osworld-w.json, which CI
// regenerates and diffs to keep the file honest.
func exportPack(path string, stdout, stderr io.Writer) error {
	p, err := taskpack.BuiltinPack()
	if err != nil {
		return fmt.Errorf("dmi-tasks: render built-in pack: %w", err)
	}
	data, err := p.Encode()
	if err != nil {
		return fmt.Errorf("dmi-tasks: encode pack: %w", err)
	}
	if path == "-" {
		_, err := stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("dmi-tasks: %w", err)
	}
	hash, err := p.Hash()
	if err != nil {
		return fmt.Errorf("dmi-tasks: %w", err)
	}
	fmt.Fprintf(stderr, "dmi-tasks: wrote pack %s (%d tasks, hash %.12s) to %s\n",
		p.Name, len(p.Tasks), hash, path)
	return nil
}

// validatePack reports every finding in a pack file, one per line, and
// returns an error (non-zero exit) when any exists.
func validatePack(path string, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("dmi-tasks: %w", err)
	}
	issues := taskpack.Validate(data)
	for _, is := range issues {
		fmt.Fprintf(stdout, "%s: %s\n", path, is)
	}
	switch len(issues) {
	case 0:
		fmt.Fprintf(stdout, "%s: ok\n", path)
		return nil
	case 1:
		return fmt.Errorf("dmi-tasks: %s failed validation with 1 issue", path)
	default:
		return fmt.Errorf("dmi-tasks: %s failed validation with %d issues", path, len(issues))
	}
}

// loadRegistry resolves the -taskpack flag to a task registry: the built-in
// grid when the flag is empty, otherwise a validated pack loaded from the
// file. Reading the file here keeps internal/taskpack pure ([]byte in, never
// the filesystem).
func loadRegistry(path string) (*taskpack.Registry, error) {
	if path == "" {
		return taskpack.Builtin(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	reg, err := taskpack.Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reg, nil
}

// trapCount is the number of plan steps carrying a modeled misinterpretation
// — the same predicate the pack encoder uses to decide a step has a trap.
func trapCount(t osworld.Task) int {
	n := 0
	for _, s := range t.Plan {
		if s.TrapKind != "" || s.TrapWeight != 0 || s.TrapAlt != nil {
			n++
		}
	}
	return n
}

func interfaceOf(s string) agent.Interface {
	switch s {
	case "gui":
		return agent.GUIOnly
	case "forest":
		return agent.GUIForest
	default:
		return agent.GUIDMI
	}
}

func profileOf(s string) llm.Profile {
	switch s {
	case "minimal":
		return llm.GPT5Minimal
	case "mini":
		return llm.GPT5Mini
	default:
		return llm.GPT5Medium
	}
}
