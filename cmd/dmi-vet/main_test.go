package main

import (
	"bytes"
	"os"
	"testing"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/dmivet"
)

// TestMain makes the test binary a working vettool: when run() below hands
// this binary to `go vet -vettool`, the go command re-invokes it with
// protocol arguments (-V=full, -flags, unit.cfg), and this dispatch serves
// them exactly as the real main does.
func TestMain(m *testing.M) {
	if protocolInvocation(os.Args[1:]) {
		unitchecker.Main(dmivet.Analyzers()...) // does not return
	}
	os.Exit(m.Run())
}

// TestRunCleanPackages drives the whole stack end-to-end — run() →
// go vet -vettool=<this binary> → unitchecker protocol → the four
// analyzers — over in-scope packages that must be clean.
func TestRunCleanPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go vet")
	}
	// One in-scope package with a small dependency closure, not ./...: the
	// vettool also runs over the whole dependency graph for facts, and
	// under -race (CI) every extra package is analyzed by a
	// race-instrumented binary.
	var out bytes.Buffer
	code := run([]string{"repro/internal/ung"}, &out, &out)
	if code != 0 {
		t.Fatalf("clean package flagged, exit %d:\n%s", code, out.String())
	}
}

// TestProtocolInvocation pins the dispatch between the two faces of the
// binary: the go-command protocol (handshake, flags query, unit.cfg
// analysis requests) versus human-typed package patterns.
func TestProtocolInvocation(t *testing.T) {
	for _, c := range []struct {
		args []string
		want bool
	}{
		{nil, false},
		{[]string{"./..."}, false},
		{[]string{"./internal/bench", "./cmd/dmi-coord"}, false},
		{[]string{"-V=full"}, true},
		{[]string{"-flags"}, true},
		{[]string{"help"}, true},
		{[]string{"/tmp/b1234/repro/internal/bench/vet.cfg"}, true},
		{[]string{"-json", "unit.cfg"}, true},
		{[]string{"-V=short"}, false}, // only the full handshake is protocol
	} {
		if got := protocolInvocation(c.args); got != c.want {
			t.Errorf("protocolInvocation(%q) = %v, want %v", c.args, got, c.want)
		}
	}
}
