// Command dmi-vet runs the repo's custom go/analysis suite — maporder,
// purity, modelsafe, wiredrift (see DESIGN.md §10) — over Go packages.
//
// Usage:
//
//	dmi-vet [packages]       # e.g. dmi-vet ./...
//
// dmi-vet is a unitchecker: the same separate-modular-analysis protocol
// `go vet` uses for its own analyzers, which means package loading, export
// data, and build caching all come from the go command rather than a
// second loader. Invoked with package patterns, it re-executes itself
// through `go vet -vettool=<self>`; invoked by the go command (with -V=full
// or a *.cfg unit file), it serves the protocol directly. Exit status is 0
// iff no diagnostics were reported.
package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/dmivet"
)

func main() {
	if protocolInvocation(os.Args[1:]) {
		unitchecker.Main(dmivet.Analyzers()...) // does not return
	}
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run re-executes the binary under `go vet -vettool` over the package
// patterns and returns the exit status (0 iff no diagnostics).
func run(args []string, stdout, stderr io.Writer) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "dmi-vet: cannot locate own executable: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		var exit *exec.ExitError
		if errors.As(err, &exit) {
			return exit.ExitCode()
		}
		fmt.Fprintf(stderr, "dmi-vet: %v\n", err)
		return 1
	}
	return 0
}

// protocolInvocation reports whether the argument list is a go-command
// protocol exchange (-V=full handshake, -flags query, help, or a unit.cfg
// analysis request) rather than a human-typed package pattern.
func protocolInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || a == "help" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
