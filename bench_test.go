// Package repro's root benchmark harness regenerates every table and figure
// of the paper's evaluation (run: go test -bench=. -benchmem). Each
// benchmark reports the headline numbers as custom metrics so the shape can
// be compared against the paper directly; EXPERIMENTS.md records
// paper-vs-measured for each.
package repro

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/dmi"
	"repro/internal/agent"
	"repro/internal/appkit"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/llm"
	"repro/internal/modelstore"
	"repro/internal/office/excel"
	"repro/internal/office/slides"
	"repro/internal/office/word"
	"repro/internal/uia"
	"repro/internal/ung"
)

var (
	modelsOnce sync.Once
	models     *agent.Models
)

func sharedModels(b *testing.B) *agent.Models {
	b.Helper()
	modelsOnce.Do(func() {
		m, err := agent.BuildModels()
		if err != nil {
			b.Fatal(err)
		}
		models = m
	})
	return models
}

// Table 1 -----------------------------------------------------------------------

// BenchmarkTable1_Task1_Declarative: "make the background blue on all
// slides" as one visit call.
func BenchmarkTable1_Task1_Declarative(b *testing.B) {
	m := sharedModels(b).ByApp["PowerPoint"]
	var blue *forest.Node
	for _, id := range m.Forest.SharedOrder {
		m.Forest.Shared[id].Walk(func(n *forest.Node) bool {
			if blue == nil && n.IsLeaf() && n.Name == "Blue" {
				blue = n
			}
			return true
		})
	}
	applyAll := m.FindLeafByName("Apply to All")
	refs := m.RefsTo(m.TreeOf(blue))
	var refID int
	for _, r := range refs {
		for _, anc := range r.PathFromRoot() {
			if strings.HasPrefix(anc.GID, "btnFillColor|") {
				refID = m.ID(r)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := slides.New(12)
		s := core.NewSession(app.App, m, core.Options{})
		res := s.Visit([]core.Command{
			core.AccessRef(m.ID(blue), refID),
			core.Access(m.ID(applyAll)),
		})
		if !res.OK() || !app.Deck.AllBackgrounds("Blue") {
			b.Fatal("task failed")
		}
	}
}

// BenchmarkTable1_Task2_StateDeclaration: set_scrollbar_pos(80%) replaces
// the drag loop.
func BenchmarkTable1_Task2_StateDeclaration(b *testing.B) {
	m := sharedModels(b).ByApp["PowerPoint"]
	for i := 0; i < b.N; i++ {
		app := slides.New(12)
		s := core.NewSession(app.App, m, core.Options{})
		lm := s.CaptureLabels()
		label := lm.Find("Slides Vertical Scroll Bar", uia.ScrollBarControl)
		if _, serr := s.SetScrollbarPos(lm, label, uia.NoScroll, 80); serr != nil {
			b.Fatal(serr)
		}
	}
}

// Table 3 / Figure 5a ------------------------------------------------------------

func benchSetting(b *testing.B, set bench.Setting, paperSR float64) {
	m := sharedModels(b)
	var row bench.Row
	for i := 0; i < b.N; i++ {
		row = bench.RunSetting(m, set, 3)
	}
	b.ReportMetric(100*row.SR, "SR%")
	b.ReportMetric(row.Steps, "steps")
	b.ReportMetric(row.TimeS, "task-sec")
	b.ReportMetric(paperSR, "paperSR%")
}

func BenchmarkTable3_GUIOnly_GPT5Medium(b *testing.B) {
	benchSetting(b, bench.Setting{Label: "GUI-only / GPT-5 / Medium",
		Interface: agent.GUIOnly, Profile: llm.GPT5Medium}, 44.4)
}

func BenchmarkTable3_Ablation_GPT5Medium(b *testing.B) {
	benchSetting(b, bench.Setting{Label: "GUI-only+forest / GPT-5 / Medium",
		Interface: agent.GUIForest, Profile: llm.GPT5Medium}, 42.0)
}

func BenchmarkTable3_GUIDMI_GPT5Medium(b *testing.B) {
	benchSetting(b, bench.Setting{Label: "GUI+DMI / GPT-5 / Medium",
		Interface: agent.GUIDMI, Profile: llm.GPT5Medium}, 74.1)
}

func BenchmarkTable3_GUIOnly_GPT5Minimal(b *testing.B) {
	benchSetting(b, bench.Setting{Label: "GUI-only / GPT-5 / Minimal",
		Interface: agent.GUIOnly, Profile: llm.GPT5Minimal}, 23.5)
}

func BenchmarkTable3_GUIDMI_GPT5Minimal(b *testing.B) {
	benchSetting(b, bench.Setting{Label: "GUI+DMI / GPT-5 / Minimal",
		Interface: agent.GUIDMI, Profile: llm.GPT5Minimal}, 40.7)
}

func BenchmarkTable3_GUIOnly_GPT5Mini(b *testing.B) {
	benchSetting(b, bench.Setting{Label: "GUI-only / 5-mini / Medium",
		Interface: agent.GUIOnly, Profile: llm.GPT5Mini}, 17.3)
}

func BenchmarkTable3_Ablation_GPT5Mini(b *testing.B) {
	benchSetting(b, bench.Setting{Label: "GUI-only+forest / 5-mini / Medium",
		Interface: agent.GUIForest, Profile: llm.GPT5Mini}, 23.5)
}

func BenchmarkTable3_GUIDMI_GPT5Mini(b *testing.B) {
	benchSetting(b, bench.Setting{Label: "GUI+DMI / 5-mini / Medium",
		Interface: agent.GUIDMI, Profile: llm.GPT5Mini}, 43.2)
}

// Figure 5b ----------------------------------------------------------------------

func BenchmarkFig5b_NormalizedCoreSteps(b *testing.B) {
	m := sharedModels(b)
	var norm []float64
	for i := 0; i < b.N; i++ {
		rep := &bench.Report{Runs: 3}
		var rows []bench.Row
		for _, set := range []bench.Setting{
			{Label: "GUI-only / GPT-5 / Medium", Interface: agent.GUIOnly, Profile: llm.GPT5Medium},
			{Label: "GUI-only+forest / GPT-5 / Medium", Interface: agent.GUIForest, Profile: llm.GPT5Medium},
			{Label: "GUI+DMI / GPT-5 / Medium", Interface: agent.GUIDMI, Profile: llm.GPT5Medium},
		} {
			rows = append(rows, bench.RunSetting(m, set, 3))
		}
		norm = rep.NormalizedCoreSteps(rows)
	}
	b.ReportMetric(norm[0], "gui-core-steps")
	b.ReportMetric(norm[1], "ablation-core-steps")
	b.ReportMetric(norm[2], "dmi-core-steps")
	b.ReportMetric(1.60, "paper-dmi-core-steps")
}

// Figure 6 -----------------------------------------------------------------------

func BenchmarkFig6_FailureDistribution(b *testing.B) {
	m := sharedModels(b)
	var dmiPolicy, guiMech float64
	for i := 0; i < b.N; i++ {
		dmiRow := bench.RunSetting(m, bench.Setting{Label: "GUI+DMI / GPT-5 / Medium",
			Interface: agent.GUIDMI, Profile: llm.GPT5Medium}, 3)
		guiRow := bench.RunSetting(m, bench.Setting{Label: "GUI-only / GPT-5 / Medium",
			Interface: agent.GUIOnly, Profile: llm.GPT5Medium}, 3)
		d := bench.Failures(dmiRow)
		g := bench.Failures(guiRow)
		if d.Total > 0 {
			dmiPolicy = 100 * float64(d.Policy) / float64(d.Total)
		}
		if g.Total > 0 {
			guiMech = 100 * float64(g.Mechanism) / float64(g.Total)
		}
	}
	b.ReportMetric(dmiPolicy, "dmi-policy%")
	b.ReportMetric(guiMech, "gui-mechanism%")
	b.ReportMetric(81.0, "paper-dmi-policy%")
	b.ReportMetric(53.3, "paper-gui-mechanism%")
}

// §5.2 offline modeling -----------------------------------------------------------

func benchRip(b *testing.B, build func() *dmi.App) {
	var g *ung.Graph
	var st ung.Stats
	var err error
	for i := 0; i < b.N; i++ {
		g, st, err = ung.Rip(build(), ung.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NodeCount()), "nodes")
	b.ReportMetric(float64(g.EdgeCount()), "edges")
	b.ReportMetric(st.SimulatedTime.Hours(), "simulated-hours")
}

func BenchmarkOffline_RipWord(b *testing.B) {
	benchRip(b, func() *dmi.App { return word.New().App })
}

func BenchmarkOffline_RipExcel(b *testing.B) {
	benchRip(b, func() *dmi.App { return excel.New().App })
}

func BenchmarkOffline_RipPowerPoint(b *testing.B) {
	benchRip(b, func() *dmi.App { return slides.New(12).App })
}

// benchRipParallel is benchRip over the worker-pool ripper: byte-identical
// graph, wall-clock divided across the pool (compare the ns/op of the
// matching sequential benchmark above).
func benchRipParallel(b *testing.B, workers int, build func() *dmi.App) {
	var g *ung.Graph
	var st ung.Stats
	var err error
	for i := 0; i < b.N; i++ {
		g, st, err = ung.RipParallel(build, ung.Config{}, workers)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NodeCount()), "nodes")
	b.ReportMetric(float64(g.EdgeCount()), "edges")
	b.ReportMetric(float64(st.Workers), "workers")
	b.ReportMetric(st.SimulatedTime.Hours(), "simulated-hours")
}

func BenchmarkOffline_RipWordParallel4(b *testing.B) {
	benchRipParallel(b, 4, func() *dmi.App { return word.New().App })
}

func BenchmarkOffline_RipExcelParallel4(b *testing.B) {
	benchRipParallel(b, 4, func() *dmi.App { return excel.New().App })
}

func BenchmarkOffline_RipPowerPointParallel4(b *testing.B) {
	benchRipParallel(b, 4, func() *dmi.App { return slides.New(12).App })
}

// BenchmarkOffline_ModelStoreWarm measures the marginal modeling cost of a
// session once the store is warm: near-zero, the scaling property the
// modelstore subsystem exists for.
func BenchmarkOffline_ModelStoreWarm(b *testing.B) {
	store := modelstore.New()
	factory := func() *appkit.App { return word.New().App }
	if _, err := store.Model("Word", factory, modelstore.Options{Workers: 4}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Model("Word", factory, modelstore.Options{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 4 -----------------------------------------------------------------------

// BenchmarkFig4_TopologyTransform transforms a merge-heavy diamond-chain
// graph: the naive full clone grows exponentially while the forest stays
// linear.
func BenchmarkFig4_TopologyTransform(b *testing.B) {
	g := diamondChain(40)
	var st forest.Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, st, err = forest.Transform(g, forest.Options{CloneThreshold: 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.GraphNodes), "graph-nodes")
	b.ReportMetric(float64(st.NaiveTreeNodes), "naive-tree-nodes")
	b.ReportMetric(float64(st.ForestNodes), "forest-nodes")
}

// §5.4 token cost -----------------------------------------------------------------

func BenchmarkTokenCost_CoreTopologies(b *testing.B) {
	m := sharedModels(b)
	var excelTok, wordTok, pptTok int
	for i := 0; i < b.N; i++ {
		excelTok = describe.Tokens(m.ByApp["Excel"].Serialize(describe.CoreOptions()))
		wordTok = describe.Tokens(m.ByApp["Word"].Serialize(describe.CoreOptions()))
		pptTok = describe.Tokens(m.ByApp["PowerPoint"].Serialize(describe.CoreOptions()))
	}
	b.ReportMetric(float64(excelTok), "excel-tokens")
	b.ReportMetric(float64(wordTok), "word-tokens")
	b.ReportMetric(float64(pptTok), "ppt-tokens")
}

// Design-choice ablations (DESIGN.md §5) -------------------------------------------

// BenchmarkAblation_CloneThreshold sweeps the externalization threshold:
// forest size versus the entry-reference indirections the LLM must supply.
func BenchmarkAblation_CloneThreshold(b *testing.B) {
	g := diamondChain(24)
	for _, th := range []int{1, 8, 64, 512} {
		th := th
		b.Run(fmt.Sprintf("threshold=%d", th), func(b *testing.B) {
			var st forest.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = forest.Transform(g, forest.Options{CloneThreshold: th})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.ForestNodes), "forest-nodes")
			b.ReportMetric(float64(st.SharedSubtrees), "shared-subtrees")
		})
	}
}

// BenchmarkAblation_CoreDepth sweeps the core-topology depth limit: token
// cost against coverage (controls that would need further_query).
func BenchmarkAblation_CoreDepth(b *testing.B) {
	m := sharedModels(b).ByApp["Word"]
	for _, depth := range []int{5, 7, 9, 12} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var tokens, controls int
			for i := 0; i < b.N; i++ {
				text := m.Serialize(describe.Options{MaxDepth: depth, DescLimit: 60})
				tokens = describe.Tokens(text)
				controls = describe.ControlsIn(text)
			}
			b.ReportMetric(float64(tokens), "tokens")
			b.ReportMetric(float64(controls), "controls")
		})
	}
}

// BenchmarkAblation_LeafFilter measures the non-leaf filter (§3.4): noisy
// LLM output that includes navigation nodes, executed with and without
// filtering.
func BenchmarkAblation_LeafFilter(b *testing.B) {
	m := sharedModels(b).ByApp["Word"]
	landscape := m.FindLeafByName("Landscape")
	opener := landscape.Parent // navigation node the noisy LLM also emits
	for _, filter := range []bool{true, false} {
		filter := filter
		b.Run(fmt.Sprintf("filter=%v", filter), func(b *testing.B) {
			ok := 0
			for i := 0; i < b.N; i++ {
				app := word.New()
				s := core.NewSession(app.App, m, core.Options{DisableLeafFilter: !filter})
				res := s.Visit([]core.Command{
					core.Access(m.ID(opener)), // navigation noise
					core.Shortcut("ENTER"),    // trailing shortcut noise
					core.Access(m.ID(landscape)),
				})
				if res.OK() && app.Doc.Orientation == "Landscape" {
					ok++
				}
			}
			b.ReportMetric(100*float64(ok)/float64(b.N), "success%")
		})
	}
}

// BenchmarkAblation_Robustness measures fuzzy matching + retries under
// injected instability (renames and slow loading).
func BenchmarkAblation_Robustness(b *testing.B) {
	m := sharedModels(b).ByApp["Word"]
	landscape := m.FindLeafByName("Landscape")
	for _, robust := range []bool{true, false} {
		robust := robust
		b.Run(fmt.Sprintf("robust=%v", robust), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			ok := 0
			for i := 0; i < b.N; i++ {
				app := word.New()
				// Inject instability: mild rename + lazy-loading menu
				// item (it lives in the Orientation popup).
				var live *uia.Element
				for _, w := range app.AllPopupWindows() {
					if live = w.Find(func(e *uia.Element) bool {
						return e.Name() == "Landscape"
					}); live != nil {
						break
					}
				}
				if live == nil {
					b.Fatal("Landscape not found in popups")
				}
				live.SetName("Landscape.")
				live.DeferVisibility(1 + rng.Intn(2))
				opt := core.Options{}
				if !robust {
					opt = core.Options{DisableFuzzy: true, DisableRetry: true, Retries: 1}
				}
				s := core.NewSession(app.App, m, opt)
				res := s.Visit([]core.Command{core.Access(m.ID(landscape))})
				if res.OK() && app.Doc.Orientation == "Landscape" {
					ok++
				}
			}
			b.ReportMetric(100*float64(ok)/float64(b.N), "success%")
		})
	}
}

// BenchmarkOnline_ParallelSessions measures the concurrent serving layer:
// one matrix cell (39 tasks × 3 runs = 117 sessions) served from a worker
// pool over the shared warm model, at increasing worker counts. sessions/sec
// is wall-clock throughput; the report stays byte-identical to the
// sequential run (asserted separately under -race), so the only thing the
// pool changes is how fast the grid drains.
func BenchmarkOnline_ParallelSessions(b *testing.B) {
	m := sharedModels(b)
	set := bench.Setting{Label: "GUI+DMI / GPT-5 / Medium",
		Interface: agent.GUIDMI, Profile: llm.GPT5Medium}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sessions := 0
			for i := 0; i < b.N; i++ {
				row := bench.RunSettingParallel(m, set, 3, workers)
				sessions += row.Total
			}
			b.ReportMetric(float64(sessions)/b.Elapsed().Seconds(), "sessions/sec")
		})
	}
}

// BenchmarkOnline_VisitPathResolution isolates the executor's hot path.
func BenchmarkOnline_VisitPathResolution(b *testing.B) {
	m := sharedModels(b).ByApp["Word"]
	landscape := m.FindLeafByName("Landscape")
	app := word.New()
	s := core.NewSession(app.App, m, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.Visit([]core.Command{core.Access(m.ID(landscape))})
		if !res.OK() {
			b.Fatal(res.Err)
		}
	}
}

// diamondChain builds the Figure 4 synthetic: a chain of diamonds whose
// naive clone doubles per level.
func diamondChain(levels int) *ung.Graph {
	g := ung.NewGraph("diamond")
	prev := ung.RootID
	add := func(id string) {
		e := uia.NewElement(id, id, uia.ButtonControl)
		g.Ensure(id, e, "")
	}
	for i := 0; i < levels; i++ {
		l := fmt.Sprintf("l%d", i)
		r := fmt.Sprintf("r%d", i)
		mnode := fmt.Sprintf("m%d", i)
		add(l)
		add(r)
		add(mnode)
		g.AddEdge(prev, l)
		g.AddEdge(prev, r)
		g.AddEdge(l, mnode)
		g.AddEdge(r, mnode)
		prev = mnode
	}
	return g
}
