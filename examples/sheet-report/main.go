// Spreadsheet scenario: structured observation (get_texts, passive and
// active) plus a conditional-formatting rule applied through one visit call
// — the Excel workload family of the paper's evaluation.
//
//	go run ./examples/sheet-report
package main

import (
	"fmt"
	"log"

	"repro/dmi"
)

func main() {
	model, err := dmi.Model(dmi.NewExcel().App)
	if err != nil {
		log.Fatal(err)
	}

	app := dmi.NewExcel(
		[]string{"Region", "Sales", "Cost"},
		[]string{"North", "120", "80"},
		[]string{"South", "95", "60"},
		[]string{"East", "143", "97"},
		[]string{"West", "88", "71"},
		[]string{"Central", "131", "90"},
	)
	// A value wider than its cell: pixels truncate it, patterns don't.
	app.Sheet.SetValue("E2", "Quarterly total including services revenue")
	s := dmi.NewSession(app.App, model, dmi.ExecOptions{})

	// Passive observation (§3.5): before each LLM call, every on-screen
	// DataItem is read and truncated; empty cells are coalesced.
	lm := s.CaptureLabels()
	fmt.Println("passive get_texts payload (first lines):")
	passive := s.PassiveTexts(lm, 16)
	for i, line := range splitLines(passive, 6) {
		fmt.Printf("  %d│ %s\n", i+1, line)
	}

	// Active observation: the full content of one cell, regardless of how
	// it renders.
	label := lm.Find("E2", dmi.DataItemControl)
	texts, serr := s.GetTexts(lm, []string{label})
	if serr != nil {
		log.Fatal(serr)
	}
	fmt.Printf("active get_texts(E2) → %q\n\n", texts[label])

	// One visit call: select B2:B6 through the Name Box (access-and-input
	// + commit shortcut), then fill in the Greater Than dialog and accept.
	gt := model.FindLeafByName("dlgGreaterThanOK")
	if gt == nil {
		// resolve by automation id prefix instead
		gt = findByGID(model, "dlgGreaterThanOK|")
	}
	nameBox := findByGID(model, "edNameBox|")
	threshold := findByGID(model, "edGTValue|")
	res := s.Visit([]dmi.Command{
		dmi.Input(model.ID(nameBox), "B2:B6"),
		dmi.Shortcut("ENTER"),
		dmi.Input(model.ID(threshold), "100"),
		dmi.Access(model.ID(gt)),
	})
	if !res.OK() {
		log.Fatalf("visit failed: %v", res.Err)
	}
	fmt.Println("conditional formatting applied in one visit call:")
	for _, ref := range []string{"B2", "B3", "B4", "B5", "B6"} {
		c := app.Sheet.Cell(ref)
		mark := " "
		if c.Fill != "" {
			mark = "█"
		}
		fmt.Printf("  %s %s = %-4s fill=%q\n", mark, ref, c.Value, c.Fill)
	}
}

func findByGID(m *dmi.TopologyModel, prefix string) *dmi.ForestNode {
	var hit *dmi.ForestNode
	scan := func(tree *dmi.ForestNode) {
		tree.Walk(func(n *dmi.ForestNode) bool {
			if hit == nil && len(n.GID) >= len(prefix) && n.GID[:len(prefix)] == prefix {
				hit = n
			}
			return true
		})
	}
	scan(m.Forest.Main)
	for _, id := range m.Forest.SharedOrder {
		scan(m.Forest.Shared[id])
	}
	if hit == nil {
		log.Fatalf("control %q not modeled", prefix)
	}
	return hit
}

func splitLines(s string, max int) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			if len(out) == max {
				return out
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
