// Quickstart: model an application offline, then complete a task with a
// single declarative call.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/dmi"
)

func main() {
	// Offline phase (paper §3.2–§3.3): rip a throwaway instance into a UI
	// Navigation Graph, transform it into a path-unambiguous forest, and
	// assign stable integer identifiers. The model is reusable for every
	// fresh instance of the same application build.
	model, err := dmi.Model(dmi.NewPowerPoint(12).App)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline model ready: %d identified controls\n", model.NodeCount())

	// Online phase: bind a DMI session to a fresh application instance.
	app := dmi.NewPowerPoint(12)
	s := dmi.NewSession(app.App, model, dmi.ExecOptions{})

	// Declare the goal — "switch the deck to the standard 4:3 size" — by
	// naming the functional control. DMI performs all navigation (Design
	// tab → Slide Size menu → item) deterministically.
	target := model.FindLeafByName("Standard (4:3)")
	if target == nil {
		log.Fatal("control not in topology")
	}
	res := s.Visit([]dmi.Command{dmi.Access(model.ID(target))})
	if !res.OK() {
		log.Fatalf("visit failed: %v", res.Err)
	}
	fmt.Printf("visit([%d]) done in %d primitive UI actions\n",
		model.ID(target), res.Executed[0].Clicks)
	fmt.Printf("slide size is now %q\n", app.Deck.SlideSize)
}
