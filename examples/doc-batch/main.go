// Word scenario: a state declaration (select_paragraphs) combined with
// access declarations through two different entry paths into the shared
// color picker — the path-dependent-semantics example of the paper — plus a
// find-and-replace batch.
//
//	go run ./examples/doc-batch
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/dmi"
)

func main() {
	model, err := dmi.Model(dmi.NewWord().App)
	if err != nil {
		log.Fatal(err)
	}

	app := dmi.NewWord(
		"Prototype alpha summary.",
		"The alpha build underperformed in alpha testing.",
		"Next steps and owners.",
	)
	s := dmi.NewSession(app.App, model, dmi.ExecOptions{})

	// State declaration: select paragraphs 1–2 directly, no drag loop.
	lm := s.CaptureLabels()
	doc := lm.Find("Document", dmi.DocumentControl)
	if serr := s.SelectParagraphs(lm, doc, 1, 2); serr != nil {
		log.Fatal(serr)
	}

	// Access through the Font Color path: the picker's Blue cell means
	// "font color" here…
	blue := stdCell(model, "Blue")
	res := s.Visit([]dmi.Command{
		dmi.AccessRef(model.ID(blue), via(model, blue, "btnFontColor")...),
	})
	if !res.OK() {
		log.Fatal(res.Err)
	}
	// …and "underline color" when entered through the Underline path.
	app.Doc.SelectParas(3, 3)
	res = s.Visit([]dmi.Command{
		dmi.AccessRef(model.ID(blue), via(model, blue, "btnUnderlineColor")...),
	})
	if !res.OK() {
		log.Fatal(res.Err)
	}
	fmt.Printf("para1 font color      = %q\n", app.Doc.Paras[0].FontColor)
	fmt.Printf("para3 underline color = %q (underlined=%v)\n",
		app.Doc.Paras[2].UnderlineColor, app.Doc.Paras[2].Underline)

	// Replace-all as one visit batch into the Find and Replace dialog.
	res = s.Visit([]dmi.Command{
		dmi.Input(gid(model, "edFindWhat|"), "alpha"),
		dmi.Input(gid(model, "edReplaceWith|"), "v0.9"),
		dmi.Access(gid(model, "btnReplaceAll|")),
	})
	if !res.OK() {
		log.Fatal(res.Err)
	}
	fmt.Printf("after replace-all: %q\n", app.Doc.Paras[1].Text)
}

func stdCell(m *dmi.TopologyModel, name string) *dmi.ForestNode {
	var hit *dmi.ForestNode
	scan := func(tree *dmi.ForestNode) {
		tree.Walk(func(n *dmi.ForestNode) bool {
			if hit == nil && n.IsLeaf() && n.Name == name &&
				strings.Contains(n.GID, "clrPickerStd") {
				hit = n
			}
			return true
		})
	}
	scan(m.Forest.Main)
	for _, id := range m.Forest.SharedOrder {
		scan(m.Forest.Shared[id])
	}
	if hit == nil {
		log.Fatalf("cell %q not modeled", name)
	}
	return hit
}

func via(m *dmi.TopologyModel, n *dmi.ForestNode, opener string) []int {
	tree := m.TreeOf(n)
	for _, r := range m.RefsTo(tree) {
		for _, anc := range r.PathFromRoot() {
			if strings.HasPrefix(anc.GID, opener+"|") {
				return []int{m.ID(r)}
			}
		}
	}
	log.Fatalf("no entry reference via %q", opener)
	return nil
}

func gid(m *dmi.TopologyModel, prefix string) int {
	var hit *dmi.ForestNode
	m.Forest.Main.Walk(func(n *dmi.ForestNode) bool {
		if hit == nil && strings.HasPrefix(n.GID, prefix) {
			hit = n
		}
		return true
	})
	if hit == nil {
		log.Fatalf("control %q not modeled", prefix)
	}
	return m.ID(hit)
}
