// Table 1, Task 1 — "make the background blue on all slides" — executed
// both ways: the imperative GUI click chain and the declarative visit call.
//
//	go run ./examples/slides-theme
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/dmi"
)

func main() {
	model, err := dmi.Model(dmi.NewPowerPoint(12).App)
	if err != nil {
		log.Fatal(err)
	}

	// Imperative: the caller must know and execute the whole chain
	// click("Design") → click("Format Background") → click("Solid fill")
	// → click("Fill Color") → click("Blue") → click("Apply to All").
	app := dmi.NewPowerPoint(12)
	clicks := 0
	click := func(name string) {
		el := app.Win.FindByName(name)
		if el == nil {
			for _, w := range app.Desk.Windows() {
				if el = w.FindByName(name); el != nil {
					break
				}
			}
		}
		if el == nil {
			log.Fatalf("imperative: %q not visible — navigation state wrong", name)
		}
		if err := app.Desk.Click(el); err != nil {
			log.Fatal(err)
		}
		clicks++
	}
	click("Design")
	click("Format Background")
	click("Solid fill")
	click("Fill Color")
	click("Blue")
	click("Apply to All")
	fmt.Printf("imperative GUI: %d hand-sequenced clicks; all blue: %v\n",
		clicks, app.Deck.AllBackgrounds("Blue"))

	// Declarative: visit(["Blue", "Apply to All"]) — the caller names the
	// outcomes; the executor owns navigation and window management.
	app2 := dmi.NewPowerPoint(12)
	s := dmi.NewSession(app2.App, model, dmi.ExecOptions{})
	blue := pickerCell(model, "Blue")
	applyAll := model.FindLeafByName("Apply to All")
	ref := entryVia(model, blue, "btnFillColor")
	res := s.Visit([]dmi.Command{
		dmi.AccessRef(model.ID(blue), ref...),
		dmi.Access(model.ID(applyAll)),
	})
	if !res.OK() {
		log.Fatalf("visit failed: %v", res.Err)
	}
	fmt.Printf("declarative DMI: 1 visit call (2 commands); all blue: %v\n",
		app2.Deck.AllBackgrounds("Blue"))
}

// pickerCell finds the shared color picker's standard-colors cell: "Blue"
// is a generic name, so the container disambiguates (paper §3.3).
func pickerCell(m *dmi.TopologyModel, name string) *dmi.ForestNode {
	var hit *dmi.ForestNode
	scan := func(tree *dmi.ForestNode) {
		tree.Walk(func(n *dmi.ForestNode) bool {
			if hit == nil && n.IsLeaf() && n.Name == name &&
				strings.Contains(n.GID, "clrPickerStd") {
				hit = n
			}
			return true
		})
	}
	scan(m.Forest.Main)
	for _, id := range m.Forest.SharedOrder {
		scan(m.Forest.Shared[id])
	}
	if hit == nil {
		log.Fatalf("picker cell %q not modeled", name)
	}
	return hit
}

// entryVia picks the entry reference routing through the named opener —
// the same cells mean "fill color" here and "font color" elsewhere.
func entryVia(m *dmi.TopologyModel, n *dmi.ForestNode, opener string) []int {
	tree := m.TreeOf(n)
	if tree == "" {
		return nil
	}
	for _, r := range m.RefsTo(tree) {
		for _, anc := range r.PathFromRoot() {
			if strings.HasPrefix(anc.GID, opener+"|") {
				return []int{m.ID(r)}
			}
		}
	}
	refs := m.RefsTo(tree)
	if len(refs) > 0 {
		return []int{m.ID(refs[0])}
	}
	return nil
}
