// Table 1, Task 2 — "show the area close to the end" — comparing the
// imperative drag loop against the declarative state interface
// set_scrollbar_pos(80%).
//
//	go run ./examples/scroll-reader
package main

import (
	"fmt"
	"log"

	"repro/dmi"
)

func main() {
	model, err := dmi.Model(dmi.NewPowerPoint(12).App)
	if err != nil {
		log.Fatal(err)
	}

	// Imperative: iterative drag-observe rounds on the scrollbar thumb,
	// each requiring coordinate reasoning and a visual check.
	app := dmi.NewPowerPoint(12)
	sb := app.Win.FindByAutomationID("sbSlides")
	r := sb.Rect()
	x := r.X + r.W/2
	rounds := 0
	for app.ThumbTop() < 4 && rounds < 10 {
		// Drag down by a guessed amount, then "look" at the result.
		if err := app.Desk.Drag(x, r.Y+10, x, r.Y+10+r.H/4); err != nil {
			log.Fatal(err)
		}
		rounds++
	}
	fmt.Printf("imperative GUI: %d drag-observe rounds; first visible slide %d\n",
		rounds, app.ThumbTop()+1)
	if app.ThumbTop() < 4 {
		fmt.Println("  (the coordinate-guessing drag loop never reached the target —")
		fmt.Println("   the fragility Figure 2b illustrates)")
	}

	// Declarative: one state declaration; the interface reports the
	// reached position as structured status.
	app2 := dmi.NewPowerPoint(12)
	s := dmi.NewSession(app2.App, model, dmi.ExecOptions{})
	lm := s.CaptureLabels()
	label := lm.Find("Slides Vertical Scroll Bar", dmi.ScrollBarControl)
	st, serr := s.SetScrollbarPos(lm, label, dmi.NoScroll, 80)
	if serr != nil {
		log.Fatal(serr)
	}
	fmt.Printf("declarative DMI: set_scrollbar_pos(80%%) → status v=%.0f%%; first visible slide %d\n",
		st.V, app2.ThumbTop()+1)
}
