package dmi_test

import (
	"strings"
	"testing"

	"repro/dmi"
)

// TestPublicAPIEndToEnd exercises the documented workflow exactly as a
// downstream user would: offline model, fresh instance, declarative calls.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	model, err := dmi.Model(dmi.NewPowerPoint(8).App)
	if err != nil {
		t.Fatal(err)
	}
	if model.NodeCount() < 3000 {
		t.Fatalf("model too small: %d nodes", model.NodeCount())
	}

	app := dmi.NewPowerPoint(8)
	s := dmi.NewSession(app.App, model, dmi.ExecOptions{})

	// Access declaration.
	target := model.FindLeafByName("Standard (4:3)")
	if target == nil {
		t.Fatal("target missing")
	}
	res := s.Visit([]dmi.Command{dmi.Access(model.ID(target))})
	if !res.OK() {
		t.Fatal(res.Err)
	}
	if app.Deck.SlideSize != "Standard (4:3)" {
		t.Fatal("access declaration had no effect")
	}

	// State declaration.
	lm := s.CaptureLabels()
	sb := lm.Find("Slides Vertical Scroll Bar", dmi.ScrollBarControl)
	st, serr := s.SetScrollbarPos(lm, sb, dmi.NoScroll, 100)
	if serr != nil {
		t.Fatal(serr)
	}
	if st.V != 100 {
		t.Fatalf("scroll status %v", st)
	}

	// Observation declaration + topology text.
	core := s.CoreTopology()
	if !strings.HasPrefix(core, "main-tree:") {
		t.Fatal("core topology malformed")
	}
	if dmi.EstimateTokens(core) < 1000 {
		t.Fatal("token estimate implausible")
	}

	// JSON command parsing (the raw LLM surface).
	cmds, err := dmi.ParseCommands([]byte(`[{"id": 1}, {"shortcut_key": "ENTER"}]`))
	if err != nil || len(cmds) != 2 {
		t.Fatalf("ParseCommands: %v %d", err, len(cmds))
	}
}

// TestOfflineArtifactsComposable: Rip → Transform → NewModel equals Model.
func TestOfflineArtifactsComposable(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	g, stats, err := dmi.Rip(dmi.NewWord().App, dmi.RipConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Explored == 0 || stats.Clicks == 0 {
		t.Fatal("rip stats empty")
	}
	f, ts, err := dmi.Transform(g, dmi.TransformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ts.ForestNodes == 0 || f.NodeCount() != ts.ForestNodes {
		t.Fatal("transform stats inconsistent")
	}
	m := dmi.NewModel(f)
	if m.NodeCount() != f.NodeCount() {
		t.Fatal("model ids incomplete")
	}
}
