package dmi_test

import (
	"context"
	"strings"
	"testing"

	"repro/dmi"
)

// TestPublicAPIEndToEnd exercises the documented workflow exactly as a
// downstream user would: offline model, fresh instance, declarative calls.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	model, err := dmi.Model(dmi.NewPowerPoint(8).App)
	if err != nil {
		t.Fatal(err)
	}
	if model.NodeCount() < 3000 {
		t.Fatalf("model too small: %d nodes", model.NodeCount())
	}

	app := dmi.NewPowerPoint(8)
	s := dmi.NewSession(app.App, model, dmi.ExecOptions{})

	// Access declaration.
	target := model.FindLeafByName("Standard (4:3)")
	if target == nil {
		t.Fatal("target missing")
	}
	res := s.Visit([]dmi.Command{dmi.Access(model.ID(target))})
	if !res.OK() {
		t.Fatal(res.Err)
	}
	if app.Deck.SlideSize != "Standard (4:3)" {
		t.Fatal("access declaration had no effect")
	}

	// State declaration.
	lm := s.CaptureLabels()
	sb := lm.Find("Slides Vertical Scroll Bar", dmi.ScrollBarControl)
	st, serr := s.SetScrollbarPos(lm, sb, dmi.NoScroll, 100)
	if serr != nil {
		t.Fatal(serr)
	}
	if st.V != 100 {
		t.Fatalf("scroll status %v", st)
	}

	// Observation declaration + topology text.
	core := s.CoreTopology()
	if !strings.HasPrefix(core, "main-tree:") {
		t.Fatal("core topology malformed")
	}
	if dmi.EstimateTokens(core) < 1000 {
		t.Fatal("token estimate implausible")
	}

	// JSON command parsing (the raw LLM surface).
	cmds, err := dmi.ParseCommands([]byte(`[{"id": 1}, {"shortcut_key": "ENTER"}]`))
	if err != nil || len(cmds) != 2 {
		t.Fatalf("ParseCommands: %v %d", err, len(cmds))
	}
}

// TestModelCachedAcrossSessions: a second Model call for a structurally
// identical application is served from the process-wide store — the same
// model pointer, so zero additional rip clicks were spent — while a
// structurally different instance gets its own model.
func TestModelCachedAcrossSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	m1, err := dmi.Model(dmi.NewPowerPoint(6).App)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := dmi.Model(dmi.NewPowerPoint(6).App)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("second Model call rebuilt instead of hitting the store")
	}
	// A 3-slide deck shows fewer thumbnails than the 6-thumb viewport, so
	// it is structurally different and must get its own model.
	m3, err := dmi.Model(dmi.NewPowerPoint(3).App)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Fatal("structurally different deck shared a cache slot")
	}
}

// TestModelKeyCoversHiddenStructure: a 7-slide and a 12-slide deck share an
// identical initial screen (same 6-thumb viewport) but differ inside
// dialogs that enumerate per-slide entries, so they rip into different
// graphs and must not share a cached model.
func TestModelKeyCoversHiddenStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	m7, err := dmi.Model(dmi.NewPowerPoint(7).App)
	if err != nil {
		t.Fatal(err)
	}
	m12, err := dmi.Model(dmi.NewPowerPoint(12).App)
	if err != nil {
		t.Fatal(err)
	}
	if m7 == m12 {
		t.Fatal("decks with different hidden structure shared a cache slot")
	}
	if m7.NodeCount() == m12.NodeCount() {
		t.Fatalf("expected different topologies, both have %d nodes", m7.NodeCount())
	}
}

// TestModelParallelMatchesSequential: the public parallel entry point lands
// in the same cache and yields the identical model.
func TestModelParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	seq, err := dmi.Model(dmi.NewPowerPoint(5).App)
	if err != nil {
		t.Fatal(err)
	}
	par, err := dmi.ModelParallel(func() *dmi.App { return dmi.NewPowerPoint(5).App }, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par != seq {
		t.Fatal("ModelParallel did not share the sequential build's cache slot")
	}
}

// TestOfflineArtifactsComposable: Rip → Transform → NewModel equals Model.
func TestOfflineArtifactsComposable(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	g, stats, err := dmi.Rip(dmi.NewWord().App, dmi.RipConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Explored == 0 || stats.Clicks == 0 {
		t.Fatal("rip stats empty")
	}
	f, ts, err := dmi.Transform(g, dmi.TransformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ts.ForestNodes == 0 || f.NodeCount() != ts.ForestNodes {
		t.Fatal("transform stats inconsistent")
	}
	m := dmi.NewModel(f)
	if m.NodeCount() != f.NodeCount() {
		t.Fatal("model ids incomplete")
	}
}

// TestBudgetedModelStorePublicAPI drives the serving-tier store exactly as
// a downstream operator would: a budget that holds one model, two
// applications cycling through it, stats exposing the traffic.
func TestBudgetedModelStorePublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	dir := t.TempDir()
	probe := dmi.NewBudgetedModelStore(dir, 0)
	word, err := probe.Build("word", func() *dmi.App { return dmi.NewWord("a").App }, dmi.ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	slides, err := probe.Build("slides", func() *dmi.App { return dmi.NewPowerPoint(4).App }, dmi.ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if word.SnapshotBytes <= 0 || slides.SnapshotBytes <= 0 {
		t.Fatalf("no snapshot cost reported: word=%d slides=%d", word.SnapshotBytes, slides.SnapshotBytes)
	}

	// One byte short of both models: each fits alone (so neither takes
	// the serve-don't-cache path), the pair never does — the second build
	// must evict the first whatever their relative sizes.
	store := dmi.NewBudgetedModelStore(dir, word.SnapshotBytes+slides.SnapshotBytes-1)
	if _, err := store.Build("word", func() *dmi.App { return dmi.NewWord("a").App }, dmi.ModelOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Build("slides", func() *dmi.App { return dmi.NewPowerPoint(4).App }, dmi.ModelOptions{}); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Evictions < 1 || st.ResidentModels < 1 {
		t.Fatalf("tight budget should have evicted: %+v", st)
	}
	if st.ResidentBytes > store.Budget() {
		t.Fatalf("resident %d over budget %d", st.ResidentBytes, store.Budget())
	}
	// Re-access the evicted model: zero rip clicks — the snapshot file
	// survived eviction.
	back, err := store.Build("word", func() *dmi.App { return dmi.NewWord("a").App }, dmi.ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !back.FromSnapshot || back.RipStats.Clicks != 0 {
		t.Fatalf("evicted model should reload from snapshot rip-free: %+v", back)
	}
	if got := store.Stats(); got.SnapshotLoads < 1 {
		t.Fatalf("snapshot reload not counted: %+v", got)
	}
}

// TestDistributedServingSeam exercises the public dispatcher surface as a
// downstream coordinator would: enumerate the grid, implement a Dispatcher,
// run it, and get an aggregated report — no internal packages needed.
func TestDistributedServingSeam(t *testing.T) {
	cells := dmi.EvalGridCells(2)
	if len(cells) == 0 {
		t.Fatal("empty evaluation grid")
	}
	for _, cell := range cells {
		if cell.Runs != 2 || cell.Task == "" || cell.Setting == "" || cell.App == "" {
			t.Fatalf("malformed grid cell: %+v", cell)
		}
	}

	// A custom dispatcher that "solves" every run in one step — the report
	// must aggregate it in grid order through the public seam.
	rep, err := dmi.RunDistributed(context.Background(), succeedAll{}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 2 || len(rep.Rows) == 0 {
		t.Fatalf("report out of shape: runs=%d rows=%d", rep.Runs, len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.SR != 1 {
			t.Fatalf("row %q SR = %v, want 1 from the all-success dispatcher", row.Setting.Label, row.SR)
		}
	}

	if _, err := dmi.NewRemoteDispatcher(nil, dmi.RemoteOptions{}); err == nil {
		t.Fatal("empty replica list must be rejected")
	}
	if _, err := dmi.NewRemoteDispatcher([]string{"http://replica-a:8480"}, dmi.RemoteOptions{}); err != nil {
		t.Fatalf("valid replica list rejected: %v", err)
	}
}

// succeedAll is a trivial public Dispatcher implementation.
type succeedAll struct{}

func (succeedAll) Dispatch(ctx context.Context, cell dmi.GridCell) ([]dmi.AgentOutcome, error) {
	out := make([]dmi.AgentOutcome, cell.Runs)
	for i := range out {
		out[i] = dmi.AgentOutcome{Task: cell.Task, Success: true, Steps: 4, CoreSteps: 1, OneShot: true}
	}
	return out, nil
}
