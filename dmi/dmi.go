// Package dmi is the public API of the DMI reproduction: the Declarative
// Model Interface from "From Imperative to Declarative: Towards
// LLM-friendly OS Interfaces for Boosted Computer-Use Agents" (EuroSys '26).
//
// The workflow mirrors the paper's two phases:
//
//	offline            online
//	─────────────      ──────────────────────────────
//	Rip(app)       →   NewSession(app, model)
//	Transform(g)   →   session.Visit / SetScrollbarPos / GetTexts …
//	NewModel(f)
//
// A quick start against the bundled PowerPoint simulator:
//
//	model, _ := dmi.Model(dmi.NewPowerPoint(12).App) // offline (throwaway instance)
//	app := dmi.NewPowerPoint(12)                     // fresh online instance
//	s := dmi.NewSession(app.App, model, dmi.ExecOptions{})
//	blue := model.FindLeafByName("Blue")
//	s.Visit([]dmi.Command{dmi.Access(model.ID(blue))})
//
// Everything re-exported here is implemented in the internal packages; see
// DESIGN.md for the system inventory.
package dmi

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/agent"
	"repro/internal/appkit"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/modelstore"
	"repro/internal/office/excel"
	"repro/internal/office/slides"
	"repro/internal/office/word"
	"repro/internal/uia"
	"repro/internal/ung"
)

// Accessibility substrate --------------------------------------------------

// Element is one control in an accessibility tree.
type Element = uia.Element

// Desktop owns the window stack, input dispatch, and the simulated clock.
type Desktop = uia.Desktop

// App is a simulated ribbon application built with the construction kit.
type App = appkit.App

// ControlType and the pattern vocabulary.
type ControlType = uia.ControlType

// Commonly used control types (the full 41-type vocabulary lives in the
// substrate).
const (
	ButtonControl    = uia.ButtonControl
	DocumentControl  = uia.DocumentControl
	DataItemControl  = uia.DataItemControl
	ListItemControl  = uia.ListItemControl
	ScrollBarControl = uia.ScrollBarControl
	SpinnerControl   = uia.SpinnerControl
)

// NoScroll marks a scroll axis that cannot scroll.
const NoScroll = uia.NoScroll

// The bundled case-study applications ---------------------------------------

// WordApp is the simulated word processor.
type WordApp = word.App

// ExcelApp is the simulated spreadsheet.
type ExcelApp = excel.App

// PowerPointApp is the simulated presentation editor.
type PowerPointApp = slides.App

// NewWord builds a fresh Word simulator (optional initial paragraphs).
func NewWord(paras ...string) *WordApp { return word.New(paras...) }

// NewExcel builds a fresh Excel simulator (optional initial rows).
func NewExcel(rows ...[]string) *ExcelApp { return excel.New(rows...) }

// NewPowerPoint builds a fresh PowerPoint simulator with n slides.
func NewPowerPoint(n int) *PowerPointApp { return slides.New(n) }

// Offline phase ----------------------------------------------------------------

// Graph is a UI Navigation Graph.
type Graph = ung.Graph

// RipConfig tunes GUI ripping.
type RipConfig = ung.Config

// RipStats reports offline modeling cost.
type RipStats = ung.Stats

// Rip builds the UNG of an application by DFS differential capture.
// Ripping clicks every control: use a throwaway application instance.
func Rip(app *App, cfg RipConfig) (*Graph, RipStats, error) { return ung.Rip(app, cfg) }

// Forest is the path-unambiguous topology (main tree + shared subtrees).
type Forest = forest.Forest

// ForestNode is one position in the forest.
type ForestNode = forest.Node

// TransformOptions tunes the graph→forest transformation.
type TransformOptions = forest.Options

// TransformStats reports what the transformation did (including the naive
// full-clone size of Figure 4).
type TransformStats = forest.Stats

// Transform decycles the graph and resolves merge nodes by cost-based
// selective externalization.
func Transform(g *Graph, opt TransformOptions) (*Forest, TransformStats, error) {
	return forest.Transform(g, opt)
}

// TopologyModel binds a forest to its integer control identifiers and
// renders the context-efficient descriptions.
type TopologyModel = describe.Model

// DescribeOptions tunes serialization.
type DescribeOptions = describe.Options

// CoreOptions returns the default core-topology settings (depth-limited,
// large enumerations pruned).
func CoreOptions() DescribeOptions { return describe.CoreOptions() }

// FullOptions serializes the complete forest.
func FullOptions() DescribeOptions { return describe.FullOptions() }

// NewModel assigns identifiers over a forest.
func NewModel(f *Forest) *TopologyModel { return describe.NewModel(f) }

// ModelStore is the concurrency-safe cache of offline builds: it memoizes
// the rip→transform→identify pipeline with singleflight semantics and, when
// persistent, JSON graph snapshots reused across runs.
type ModelStore = modelstore.Store

// ModelOptions configures one offline build in a store.
type ModelOptions = modelstore.Options

// ModelBuild carries a build's provenance (cache hit, snapshot reuse, rip
// and transform statistics).
type ModelBuild = modelstore.Build

// ModelStoreStats counts a store's traffic (hits, misses, snapshot loads,
// evictions) and its warm working set (resident bytes and models).
type ModelStoreStats = modelstore.Stats

// NewModelStore creates an in-memory model store.
func NewModelStore() *ModelStore { return modelstore.New() }

// NewPersistentModelStore creates a model store that saves and reuses JSON
// graph snapshots under dir.
func NewPersistentModelStore(dir string) *ModelStore { return modelstore.NewPersistent(dir) }

// NewBudgetedModelStore creates a serving-grade model store that holds at
// most budget bytes of encoded graph snapshots warm (0 = unlimited),
// evicting the least-recently-used models beyond that. With a non-empty
// dir, snapshot files survive eviction, so re-accessing an evicted model
// rebuilds it from disk with zero rip clicks.
func NewBudgetedModelStore(dir string, budget int64) *ModelStore {
	return modelstore.NewBudgeted(dir, budget)
}

// defaultStore backs Model and ModelParallel: one offline build per distinct
// application structure per process, shared by every session.
var defaultStore = modelstore.New()

// structuralKey fingerprints an application instance by name plus the
// synthesized identifiers and names of its complete UI surface: every
// element of the main window and of every popup template, visible or not.
// Hidden elements matter — two decks can share an identical initial screen
// (the same thumbnail viewport) yet differ inside a dialog that enumerates
// per-slide entries — so the key must cover everything the ripper could
// ever reveal. Instances with equal keys rip into identical graphs and
// share one cached model; a false split (equal graphs, different keys)
// merely costs an extra build, never a wrong model.
func structuralKey(app *App) string {
	h := fnv.New64a()
	hash := func(root *uia.Element) {
		root.Walk(func(e *uia.Element) bool {
			io.WriteString(h, e.ControlID())
			io.WriteString(h, "\x00")
			io.WriteString(h, e.Name())
			io.WriteString(h, "\x01")
			return true
		})
	}
	hash(app.Win)
	for _, w := range app.AllPopupWindows() {
		hash(w)
	}
	return fmt.Sprintf("%s#%016x", app.Name, h.Sum64())
}

// Model runs the complete offline phase for an application instance: rip,
// transform, identify. Results are memoized in a process-wide store keyed by
// the instance's structural fingerprint: the first call per application
// builds (consuming the instance — ripping mutates state); later calls for a
// structurally identical application return the cached model without
// touching the instance at all.
func Model(app *App) (*TopologyModel, error) {
	return defaultStore.Model(structuralKey(app), func() *appkit.App { return app }, modelstore.Options{})
}

// ModelParallel is Model with the offline build distributed over a pool of
// worker goroutines, each driving its own throwaway instance from factory.
// The result is byte-identical to the sequential build and lands in the same
// process-wide cache.
func ModelParallel(factory func() *App, workers int) (*TopologyModel, error) {
	probe := factory()
	return defaultStore.Model(structuralKey(probe), factory, modelstore.Options{Workers: workers})
}

// EstimateTokens estimates the LLM token cost of a serialized topology.
func EstimateTokens(serialized string) int { return describe.Tokens(serialized) }

// Online phase -----------------------------------------------------------------

// Session is the DMI runtime bound to one application and its model.
type Session = core.Session

// ExecOptions tunes the executor (retries, fuzzy matching, ablations).
type ExecOptions = core.Options

// Command is one structured visit command.
type Command = core.Command

// VisitResult is the structured feedback of one visit call.
type VisitResult = core.VisitResult

// StepError is the structured error fed back for replanning.
type StepError = core.StepError

// LabelMap labels the current screen for the interaction interfaces.
type LabelMap = core.LabelMap

// ScrollStatus reports a scrollbar position after a state declaration.
type ScrollStatus = core.ScrollStatus

// NewSession binds the DMI runtime to an application and its offline model.
func NewSession(app *App, model *TopologyModel, opt ExecOptions) *Session {
	return core.NewSession(app, model, opt)
}

// Distributed serving ----------------------------------------------------------

// Dispatcher abstracts where evaluation grid cells execute: in-process over
// warm models, or sharded across dmi-serve replicas. Implementations must
// return exactly Cell.Runs outcomes in run order — the idempotent cell
// contract that makes re-dispatch after a replica failure safe.
type Dispatcher = bench.Dispatcher

// GridCell is one serializable (setting, task, runs) job unit of the
// evaluation grid — the body of a dmi-serve POST /session.
type GridCell = bench.Cell

// AgentOutcome is the result of one task run — what a Dispatcher returns
// per repetition.
type AgentOutcome = agent.Outcome

// BenchReport is the aggregated evaluation output (Table 3, Figures 5/6,
// one-shot and token statistics).
type BenchReport = bench.Report

// RemoteDispatcher shards cells across dmi-serve replicas with per-replica
// in-flight caps, failure detection, re-dispatch of failed cells,
// half-open recovery probing (a down-marked replica returns to rotation
// once its /healthz answers ready again), and elastic membership
// (AddReplica/RemoveReplica adjust the fleet mid-run). Call Close when
// retiring a dispatcher to stop its background probers.
type RemoteDispatcher = bench.RemoteDispatcher

// RemoteOptions tunes a RemoteDispatcher (per-replica in-flight cap, HTTP
// client, recovery-probe cadence, event logging).
type RemoteOptions = bench.RemoteOptions

// NewRemoteDispatcher validates the replica base URLs and builds a
// dispatcher over them.
func NewRemoteDispatcher(replicas []string, opt RemoteOptions) (*RemoteDispatcher, error) {
	return bench.NewRemoteDispatcher(replicas, opt)
}

// EvalGridCells enumerates the full evaluation grid in the canonical grid
// order every dispatcher-backed run aggregates in.
func EvalGridCells(runs int) []GridCell { return bench.GridCells(runs) }

// RunDistributed executes the full evaluation grid through a dispatcher
// with up to `concurrency` cells in flight, aggregating outcomes in grid
// order — the report is byte-identical to the in-process evaluation
// whenever the dispatcher honors the cell contract. This is the
// programmatic form of the dmi-coord CLI.
func RunDistributed(ctx context.Context, d Dispatcher, runs, concurrency int) (*BenchReport, error) {
	return bench.RunDispatched(ctx, d, runs, concurrency)
}

// RunDistributedStreaming executes the full evaluation grid as a work
// queue: cells are dispatched as fleet capacity frees up (dispatchers
// implementing bench.CapacityReporter, like RemoteDispatcher, are paced by
// their live capacity), so concurrency follows replica failures,
// recoveries, joins, and leaves. The report stays byte-identical to
// RunDistributed and the in-process evaluation.
func RunDistributedStreaming(ctx context.Context, d Dispatcher, runs int) (*BenchReport, error) {
	return bench.RunStreamed(ctx, d, runs)
}

// Access builds a control-access command.
func Access(id int) Command { return core.Access(id) }

// AccessRef builds a control-access command for a shared-subtree target.
func AccessRef(id int, entryRefs ...int) Command { return core.AccessRef(id, entryRefs...) }

// Input builds an access-and-input-text command.
func Input(id int, text string) Command { return core.Input(id, text) }

// Shortcut builds a shortcut-key command.
func Shortcut(key string) Command { return core.Shortcut(key) }

// FurtherQuery builds a topology-expansion command (-1 = whole forest).
func FurtherQuery(ids ...int) Command { return core.FurtherQuery(ids...) }

// ParseCommands decodes a JSON array of visit commands (raw LLM output).
func ParseCommands(raw []byte) ([]Command, error) { return core.ParseCommands(raw) }
